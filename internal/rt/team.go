package rt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"aomplib/internal/gls"
)

// current holds the per-goroutine stack of worker contexts. Parallel
// regions push a Worker on each participating goroutine; nested regions
// stack naturally. With the default gls backend the binding extends to
// goroutines spawned inside the region's dynamic extent.
var current = gls.NewStore()

// glsContexts counts live worker registrations, so Current can answer
// "no parallel region anywhere" with one atomic load — keeping woven
// calls in sequential programs at direct-call cost even under the
// portable gls backend, whose per-goroutine lookup is comparatively slow.
var glsContexts atomic.Int64

// Current returns the Worker executing on this goroutine, or nil when the
// caller is outside any parallel region (sequential part of the program).
func Current() *Worker {
	if glsContexts.Load() > 0 {
		if v := current.Current(); v != nil {
			return v.(*Worker)
		}
	}
	return nil
}

// ThreadID reports the id of the calling worker within its (innermost)
// team, or 0 outside parallel regions — the paper's getThreadId().
func ThreadID() int {
	if w := Current(); w != nil {
		return w.ID
	}
	return 0
}

// NumThreads reports the size of the calling worker's team, or 1 outside
// parallel regions.
func NumThreads() int {
	if w := Current(); w != nil {
		return w.Team.Size
	}
	return 1
}

// Level reports the parallel-region nesting depth at the caller: 0 outside
// any region, 1 inside an outermost region, and so on.
func Level() int {
	if w := Current(); w != nil {
		return w.Team.Level
	}
	return 0
}

// DefaultThreads is the team size used when a parallel region does not
// specify one; it mirrors OpenMP's default of one thread per available
// processor.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// nestedOff gates nested parallel regions (the analogue of OMP_NESTED).
// Nesting is enabled by default; when disabled, a Region entered from
// inside a team runs serialized — a fresh inner team of one worker — so
// ThreadID/NumThreads/barriers keep consistent inner-team semantics either
// way. The zero value means "enabled" so the gate costs one atomic load.
var nestedOff atomic.Bool

// SetNested enables or disables nested parallel regions, returning the
// previous setting.
func SetNested(on bool) bool { return !nestedOff.Swap(!on) }

// NestedEnabled reports whether nested parallel regions spawn real teams.
func NestedEnabled() bool { return !nestedOff.Load() }

// Team is a team of workers executing one parallel region entry.
type Team struct {
	// Size is the number of workers (master included).
	Size int
	// Level is the region nesting depth (outermost region = 1).
	Level int
	// Parent is the worker that entered the region (nil at the outermost
	// level when entered from sequential code).
	Parent *Worker

	// workers lists all team members (index == Worker.ID); it is what
	// task stealing iterates over.
	workers []*Worker

	barrier *Barrier

	// completed flips once the region has fully joined; spawns observed
	// after that fall back to the global (goroutine-per-task) scope.
	completed atomic.Bool

	mu         sync.Mutex
	tasks      *TaskGroup  // lazily created on first task spawn/wait
	deps       *depTracker // lazily created on first @Depend spawn
	constructs map[any]map[int64]*instanceSlot
}

type instanceSlot struct {
	state    any
	released int
}

// Worker is one activity in a team. Exported fields are safe to read from
// the worker's own goroutine; maps are worker-private and lazily created.
type Worker struct {
	ID   int
	Team *Team

	deque deque         // pending deferred tasks (stealable by siblings)
	rng   atomic.Uint64 // steal-victim selection state

	encounters map[any]int64
	activeFor  []*ForContext // stack: nested work-sharing contexts
	tls        map[any]any   // thread-local values keyed by construct identity
	fcFree     []*ForContext // recycled work-sharing contexts

	// curGroup is the innermost @TaskGroup scope active on this worker;
	// spawned tasks join it instead of the team group, and executing a
	// task adopts its group so descendants join the same scope. Atomic
	// because goroutines with inherited worker context may share w.
	curGroup atomic.Pointer[TaskGroup]
}

// Barrier returns the team barrier.
func (t *Team) Barrier() *Barrier { return t.barrier }

// Tasks returns the team task group (joined by @TaskWait and at region
// end), creating it on first use so task-free regions pay nothing.
func (t *Team) Tasks() *TaskGroup {
	t.mu.Lock()
	if t.tasks == nil {
		t.tasks = NewTaskGroup()
	}
	g := t.tasks
	t.mu.Unlock()
	return g
}

// tasksIfAny returns the team task group if any task activity created it.
func (t *Team) tasksIfAny() *TaskGroup {
	t.mu.Lock()
	g := t.tasks
	t.mu.Unlock()
	return g
}

// depTracker returns the team's dependence tracker (@Depend bookkeeping),
// creating it on first use so dependence-free regions pay nothing.
func (t *Team) depTracker() *depTracker {
	t.mu.Lock()
	if t.deps == nil {
		t.deps = newDepTracker()
	}
	d := t.deps
	t.mu.Unlock()
	return d
}

// ParentTeam returns the team enclosing this one, or nil at the outermost
// level — the team lineage behind nested parallel regions.
func (t *Team) ParentTeam() *Team {
	if t.Parent == nil {
		return nil
	}
	return t.Parent.Team
}

// Root returns the outermost team of this team's lineage.
func (t *Team) Root() *Team {
	for t.ParentTeam() != nil {
		t = t.ParentTeam()
	}
	return t
}

// Region executes body with a team of n workers, reproducing paper Fig. 9:
// the caller becomes worker 0 (the master), n-1 goroutines are spawned,
// each establishes its worker context and runs body, and the master joins
// all spawned workers before returning. Any panic raised by a worker is
// re-raised on the master after the join, so failures cannot be lost.
//
// n < 1 selects DefaultThreads(). Nested calls create a fresh inner team,
// as the library "also supports nested parallel regions"; with nesting
// disabled (SetNested(false)) the inner team has a single worker. The
// region's end is a task scheduling point: every worker drains the team's
// deferred tasks before the join completes.
func Region(n int, body func(w *Worker)) {
	if n < 1 {
		n = DefaultThreads()
	}
	parent := Current()
	level := 1
	if parent != nil {
		level = parent.Team.Level + 1
		if !NestedEnabled() {
			n = 1
		}
	}
	team := &Team{
		Size:    n,
		Level:   level,
		Parent:  parent,
		barrier: NewBarrier(n),
		workers: make([]*Worker, n),
	}
	for i := 0; i < n; i++ {
		team.workers[i] = newWorker(i, team)
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
		panicked bool
	)
	run := func(w *Worker) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				panicMu.Unlock()
			}
		}()
		glsContexts.Add(1)
		tok := current.PushToken(w)
		defer func() {
			current.Restore(tok)
			glsContexts.Add(-1)
		}()
		body(w)
		// Implicit region-end join for deferred tasks: each worker helps
		// execute queued tasks (its own, then stolen) until none remain
		// anywhere in the team.
		if g := team.tasksIfAny(); g != nil {
			g.helpWait(w)
		}
	}

	for i := 1; i < n; i++ {
		w := team.workers[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(w)
		}()
	}
	master := team.workers[0]
	run(master)
	wg.Wait()
	// Safety net: run any task still queued — stragglers spawned from
	// goroutines that inherited a worker context around the join, or
	// tasks left behind because worker quiesces were skipped by a panic.
	// They execute on the master (futures must resolve even when the
	// region fails, as they did when every task was its own goroutine);
	// a panicking task is recorded like a worker panic and the drain
	// resumes, so cleanup always completes and the first panic re-raises.
	if g := team.tasksIfAny(); g != nil {
		glsContexts.Add(1)
		tok := current.PushToken(master)
		for {
			clean := true
			func() {
				defer func() {
					if r := recover(); r != nil {
						clean = false
						panicMu.Lock()
						if !panicked {
							panicked, panicVal = true, r
						}
						panicMu.Unlock()
					}
				}()
				g.helpWait(master)
			}()
			if clean {
				break
			}
		}
		current.Restore(tok)
		glsContexts.Add(-1)
	}
	team.completed.Store(true)
	if panicked {
		panic(panicVal)
	}
}

func newWorker(id int, t *Team) *Worker {
	w := &Worker{ID: id, Team: t}
	w.rng.Store(uint64(id)*0x9e3779b97f4a7c15 + 0x1234567887654321)
	return w
}

// NextEncounter returns this worker's encounter index for the construct
// identified by key, incrementing it. Work-sharing and single constructs
// use matching encounter indices across workers to share per-encounter
// state; this requires — as in OpenMP — that such constructs are
// encountered by all workers of the team or by none.
func (w *Worker) NextEncounter(key any) int64 {
	if w.encounters == nil {
		w.encounters = make(map[any]int64)
	}
	n := w.encounters[key]
	w.encounters[key] = n + 1
	return n
}

// Instance returns the shared state for encounter enc of construct key,
// creating it with factory on first arrival. All workers of the team
// observe the same state value for the same (key, enc) pair.
func (t *Team) Instance(key any, enc int64, factory func() any) any {
	t.mu.Lock()
	if t.constructs == nil {
		t.constructs = make(map[any]map[int64]*instanceSlot)
	}
	byEnc := t.constructs[key]
	if byEnc == nil {
		byEnc = make(map[int64]*instanceSlot)
		t.constructs[key] = byEnc
	}
	slot := byEnc[enc]
	if slot == nil {
		slot = &instanceSlot{state: factory()}
		byEnc[enc] = slot
	}
	st := slot.state
	t.mu.Unlock()
	return st
}

// Release marks the calling worker as done with encounter enc of construct
// key; when all workers have released it the state is dropped, bounding
// memory across the many encounters of long-running regions.
func (t *Team) Release(key any, enc int64) {
	t.mu.Lock()
	if byEnc := t.constructs[key]; byEnc != nil {
		if slot := byEnc[enc]; slot != nil {
			slot.released++
			if slot.released >= t.Size {
				delete(byEnc, enc)
				if len(byEnc) == 0 {
					delete(t.constructs, key)
				}
			}
		}
	}
	t.mu.Unlock()
}

// pendingInstances reports construct instances not yet fully released
// (diagnostics/tests only).
func (t *Team) pendingInstances() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, byEnc := range t.constructs {
		n += len(byEnc)
	}
	return n
}

// String implements fmt.Stringer for diagnostics.
func (w *Worker) String() string {
	return fmt.Sprintf("worker %d/%d (level %d)", w.ID, w.Team.Size, w.Team.Level)
}
