package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func mkTask(g *TaskGroup, fn func()) *task {
	g.Add(1)
	return &task{fn: fn, group: g}
}

func TestDequeLIFOForOwnerFIFOForThief(t *testing.T) {
	g := NewTaskGroup()
	var d deque
	var got []int
	push := func(i int) { d.push(mkTask(g, func() { got = append(got, i) })) }
	for i := 0; i < 4; i++ {
		push(i)
	}
	// Thief takes the oldest.
	d.stealTop().run()
	// Owner takes the newest.
	d.popBottom().run()
	d.popBottom().run()
	d.stealTop().run()
	want := []int{0, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if d.popBottom() != nil || d.stealTop() != nil || d.size() != 0 {
		t.Fatal("deque not empty after draining")
	}
	if g.Pending() != 0 {
		t.Fatalf("pending = %d", g.Pending())
	}
}

func TestDequeGrowsPreservingOrder(t *testing.T) {
	g := NewTaskGroup()
	var d deque
	const n = 100 // forces several ring growths
	var got []int
	for i := 0; i < n; i++ {
		i := i
		d.push(mkTask(g, func() { got = append(got, i) }))
	}
	for {
		tk := d.stealTop()
		if tk == nil {
			break
		}
		tk.run()
	}
	if len(got) != n {
		t.Fatalf("drained %d tasks, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("steal order broken at %d: %v", i, got[:i+1])
		}
	}
}

// Concurrent owner pops and sibling steals must hand out every task
// exactly once.
func TestDequeConcurrentStealExactlyOnce(t *testing.T) {
	g := NewTaskGroup()
	var d deque
	const n = 5000
	var hits [n]atomic.Int32
	for i := 0; i < n; i++ {
		i := i
		d.push(mkTask(g, func() { hits[i].Add(1) }))
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		steal := r%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var tk *task
				if steal {
					tk = d.stealTop()
				} else {
					tk = d.popBottom()
				}
				if tk == nil {
					return
				}
				tk.run()
			}
		}()
	}
	wg.Wait()
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, hits[i].Load())
		}
	}
	if g.Pending() != 0 {
		t.Fatalf("pending = %d", g.Pending())
	}
}

// A task queued by worker 0 is deterministically stolen and executed by
// worker 1: worker 0 parks at a barrier right after spawning (a barrier is
// not a task scheduling point), so the only way worker 1's taskwait can
// complete is by stealing and running the task itself.
func TestTaskStolenBySiblingAtTaskWait(t *testing.T) {
	var executor atomic.Int32
	executor.Store(-1)
	var spawned atomic.Bool
	Region(2, func(w *Worker) {
		if w.ID == 0 {
			Spawn(func() { executor.Store(int32(ThreadID())) })
			spawned.Store(true)
			w.Team.Barrier().Wait() // park until worker 1 has joined the task
		} else {
			for !spawned.Load() {
				runtime.Gosched()
			}
			TaskWait() // must steal worker 0's task to make progress
			w.Team.Barrier().Wait()
		}
	})
	if executor.Load() != 1 {
		t.Fatalf("task executed by worker %d, want stolen by worker 1", executor.Load())
	}
}

func TestFindTaskPrefersOwnDeque(t *testing.T) {
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		var ran []string
		Spawn(func() { ran = append(ran, "first") })
		Spawn(func() { ran = append(ran, "second") })
		// The spawner drains its own deque LIFO at the scheduling point.
		TaskWait()
		if len(ran) != 2 || ran[0] != "second" {
			t.Fatalf("own-deque order = %v, want LIFO", ran)
		}
	})
}
