package rt

import (
	"sync/atomic"
	"testing"
	"time"

	"aomplib/internal/sched"
)

// TestForSpanCoversEverySchedule drives ForSpan directly (the parallel
// package normally does) and checks the exactly-once contract for every
// concrete schedule kind, including strided static-cyclic assignments.
func TestForSpanCoversEverySchedule(t *testing.T) {
	kinds := []sched.Kind{
		sched.StaticBlock, sched.StaticCyclic, sched.Dynamic, sched.Guided, sched.Steal,
	}
	for _, kind := range kinds {
		for _, width := range []int{1, 2, 4, 7} {
			for _, n := range []int{0, 1, 5, 64, 1000} {
				hits := make([]int32, n)
				sp := sched.Space{Lo: 0, Hi: n, Step: 1}
				key := new(int)
				Region(width, func(w *Worker) {
					ForSpan(w, sp, kind, key, 3, func(sub sched.Space, _ any) {
						c := sub.Count()
						for i := 0; i < c; i++ {
							atomic.AddInt32(&hits[sub.At(i)], 1)
						}
					}, nil)
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("kind=%v width=%d n=%d: index %d run %d times", kind, width, n, i, h)
					}
				}
			}
		}
	}
}

func TestSpawnRangeCoversAndJoins(t *testing.T) {
	for _, grain := range []int{1, 7, 100, 10_000} {
		const n = 1000
		hits := make([]int32, n)
		Region(4, func(w *Worker) {
			if w.ID == 0 {
				TaskGroupScope(func() {
					SpawnRange(sched.Space{Lo: 0, Hi: n, Step: 1}, grain, func(sub sched.Space) {
						for i := sub.Lo; i < sub.Hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
				})
				// The scope join: every piece must be done here.
				for i, h := range hits {
					if atomic.LoadInt32(&hits[i]) != 1 {
						t.Errorf("grain=%d: index %d run %d times at scope exit", grain, i, h)
					}
				}
			}
		})
	}
}

func TestTokenPoolCounts(t *testing.T) {
	p := NewTokenPool(3)
	if p.Free() != 3 {
		t.Fatalf("fresh pool Free = %d", p.Free())
	}
	for i := 0; i < 3; i++ {
		if !p.TryAcquire() {
			t.Fatalf("TryAcquire %d failed on a free pool", i)
		}
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded on an empty pool")
	}
	p.Release()
	if p.Free() != 1 {
		t.Fatalf("Free after release = %d", p.Free())
	}
	p.Acquire() // must take the free token without blocking
	if p.Free() != 0 {
		t.Fatalf("Free after acquire = %d", p.Free())
	}
}

func TestTokenPoolBlocksOffWorker(t *testing.T) {
	p := NewTokenPool(1)
	p.Acquire()
	done := make(chan struct{})
	go func() {
		p.Acquire() // plain goroutine: parks on the pool condvar
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Acquire returned with no token available")
	case <-time.After(20 * time.Millisecond):
	}
	p.Release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire not woken by Release")
	}
}

// TestTokenPoolWorkerHelps is the one-worker pipeline shape: the only
// worker holds all tokens, and the releases it is waiting for can only
// come from tasks it must itself execute. Acquire must help.
func TestTokenPoolWorkerHelps(t *testing.T) {
	p := NewTokenPool(2)
	var ran atomic.Int32
	doneCh := make(chan struct{})
	go func() {
		Region(1, func(w *Worker) {
			for i := 0; i < 10; i++ {
				p.Acquire()
				Spawn(func() {
					ran.Add(1)
					p.Release()
				})
			}
		})
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("one-worker token loop deadlocked: Acquire did not help drain tasks")
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d release tasks, want 10", ran.Load())
	}
}
