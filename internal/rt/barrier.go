// Package rt implements AOmpLib's execution model (paper §III.A): parallel
// regions executed by a team of workers created on region entry, with the
// master thread participating as worker 0 and joining the spawned workers
// at region exit (paper Fig. 9). It also provides the shared state behind
// the synchronisation constructs: a team barrier, per-construct instance
// tracking (so that repeated encounters of the same work-sharing or single
// construct inside one region stay matched across workers), named and
// per-object critical locks, task groups and futures.
package rt

import (
	"sync"
	"time"
)

// Barrier is a reusable team barrier with generation counting (equivalent
// to a sense-reversing barrier). Each call to Wait blocks until all n
// parties have arrived; the barrier then resets for the next phase. The
// generation discipline is what lets a hot team reuse one barrier across
// every region entry it serves: a clean lease always leaves the barrier
// between generations (all waits paired), so no reset is needed at lease
// boundaries.
//
// Its scope is one team of threads, matching the paper: "The barrier has
// the scope of a team of threads, in a way similar to OpenMP (this
// contrasts with @Critical whose scope is all threads in the system)."
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64

	// owner is the team the barrier synchronises, set by newTeam; nil for
	// standalone barriers. Only observability reads it.
	owner *Team
}

// ownerID is the team identity carried by barrier trace events.
func (b *Barrier) ownerID() uint64 {
	if b.owner != nil {
		return b.owner.tid
	}
	return 0
}

// NewBarrier creates a barrier for the given number of parties (≥ 1).
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		parties = 1
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks the caller until all parties have called Wait for the
// current generation. The last arriver releases everyone and resets the
// barrier. Returns the generation index that completed, which is useful
// for tests and phase-counting diagnostics.
func (b *Barrier) Wait() uint64 {
	// Instrumented arrival: the depart event carries the nanoseconds this
	// caller spent blocked, which the trace renders as a wait slice. The
	// worker lookup and clock reads run only with a tool installed.
	if h := obsHooks(); h != nil {
		gid := curGID()
		if h.BarrierArrive != nil {
			h.BarrierArrive(gid, b.ownerID())
		}
		t0 := time.Now()
		gen := b.wait()
		if h.BarrierDepart != nil {
			h.BarrierDepart(gid, b.ownerID(), time.Since(t0).Nanoseconds())
		}
		return gen
	}
	return b.wait()
}

func (b *Barrier) wait() uint64 {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return gen
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return gen
}

// Parties returns the number of workers the barrier synchronises.
func (b *Barrier) Parties() int { return b.parties }
