package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Barrier is a reusable team barrier with generation counting (equivalent
// to a sense-reversing barrier). Each call to Wait blocks until all n
// parties have arrived; the barrier then resets for the next phase. The
// generation discipline is what lets a hot team reuse one barrier across
// every region entry it serves: a clean lease always leaves the barrier
// between generations (all waits paired), so no reset is needed at lease
// boundaries.
//
// Arrivals are counted on a fan-in tree of cache-line-padded atomic
// counters instead of a mutex: workers of the owning team arrive at the
// leaf covering their id, the last arriver of each leaf group propagates
// one batched count to the root, and the last root arriver publishes the
// next generation — so a phase costs each worker one or two uncontended
// RMWs instead of a serialised lock acquisition. Waiters spin on the
// generation word for an adaptively bounded interval (sized by where
// recent phases were observed to complete) and park on a condition
// variable only when a phase overruns it, so short compute phases never
// pay a scheduler round trip and long ones never burn a core.
//
// The counters are monotonic and the release check is modular, so no
// per-generation reset exists to race with the next phase's arrivals, and
// the generation counter wraps around uint64 without disturbing arrival
// accounting.
//
// Its scope is one team of threads, matching the paper: "The barrier has
// the scope of a team of threads, in a way similar to OpenMP (this
// contrasts with @Critical whose scope is all threads in the system)."
type Barrier struct {
	parties int

	// gen is the release word every waiter spins on; alone on its line so
	// arrival RMW traffic does not invalidate it between releases.
	gen atomic.Uint64
	_   [56]byte

	// Arrival tree. leaves[i] counts arrivals of worker ids
	// [i*barrierFanIn, (i+1)*barrierFanIn); quota[i] is that group's width.
	// nil when parties <= barrierFanIn — arrivals then go straight to the
	// root, which always counts in units of parties per generation.
	// Arrivals without a worker id (standalone barriers, goroutines outside
	// the owning team) also count directly on the root, one unit each.
	leaves []barrierNode
	quota  []int64
	root   barrierNode

	// spin is the adaptive spin bound in loop iterations, resized toward
	// twice the iteration recent releases were observed at and halved on
	// every park. Races on it are benign tuning noise.
	spin atomic.Int32

	// parked counts waiters committed to sleeping; the releaser takes the
	// broadcast mutex only when it is non-zero, so the spin-release fast
	// path never touches mu.
	parked atomic.Int32
	mu     sync.Mutex
	cond   *sync.Cond

	// owner is the team the barrier synchronises, set by newTeam; nil for
	// standalone barriers. Worker-id arrival routing and observability
	// read it.
	owner *Team
}

// barrierNode is one fan-in counter, padded to a cache line so sibling
// groups do not false-share.
type barrierNode struct {
	count atomic.Int64
	_     [56]byte
}

const (
	// barrierFanIn is the arrival-tree arity: up to this many workers
	// share one leaf counter.
	barrierFanIn = 4

	barrierSpinMin  = 64      // never spin less: a release often lands within nanoseconds
	barrierSpinMax  = 1 << 15 // never spin more: beyond ~tens of µs, parking is cheaper
	barrierSpinInit = 1 << 10
	// barrierYieldMask: Gosched every so many spin iterations, so
	// oversubscribed teams (more workers than Ps) cannot starve the
	// arrivals that would release them.
	barrierYieldMask = 63
)

// ownerID is the team identity carried by barrier trace events.
func (b *Barrier) ownerID() uint64 {
	if b.owner != nil {
		return b.owner.tid
	}
	return 0
}

// NewBarrier creates a barrier for the given number of parties (≥ 1).
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		parties = 1
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	b.spin.Store(barrierSpinInit)
	if parties > barrierFanIn {
		groups := (parties + barrierFanIn - 1) / barrierFanIn
		b.leaves = make([]barrierNode, groups)
		b.quota = make([]int64, groups)
		for g := range b.quota {
			width := parties - g*barrierFanIn
			if width > barrierFanIn {
				width = barrierFanIn
			}
			b.quota[g] = int64(width)
		}
	}
	return b
}

// Wait blocks the caller until all parties have called Wait for the
// current generation. The last arriver releases everyone and the barrier
// implicitly resets for the next phase. Returns the generation index that
// completed, which is useful for tests and phase-counting diagnostics.
//
// When the calling goroutine carries a worker context of the barrier's
// owning team, the arrival is routed through that worker's leaf of the
// fan-in tree; any other caller arrives anonymously at the root. On
// standalone barriers (NewBarrier — no owning team, so every arrival is
// anonymous) any `parties` arrivals complete a generation, exactly as
// before. On a *team* barrier wide enough to have a tree (parties >
// fan-in), each team worker must arrive through its own worker context:
// an anonymous arrival standing in for an absent worker leaves that
// worker's leaf short of quota and the phase never completes. Arriving
// at a team barrier from outside the team was already undefined under
// the work-sharing contract (see Team.beginLease); this makes the one
// previously-accidental shape of it — substituted arrivals — explicitly
// unsupported.
func (b *Barrier) Wait() uint64 {
	return b.waitTimed(b.slotOf(Current()))
}

// WaitWorker is Wait for call sites that already hold the worker context
// (the woven constructs), skipping the goroutine-local lookup.
func (b *Barrier) WaitWorker(w *Worker) uint64 {
	return b.waitTimed(b.slotOf(w))
}

// slotOf maps a worker to its arrival id, or -1 for anonymous arrivals.
func (b *Barrier) slotOf(w *Worker) int {
	if w != nil && w.Team != nil && w.Team.barrier == b {
		return w.ID
	}
	return -1
}

// waitTimed wraps the wait with the instrumented arrival: the depart event
// carries the nanoseconds this caller spent blocked, which the trace
// renders as a wait slice. The worker lookup and clock reads run only with
// a tool installed.
func (b *Barrier) waitTimed(id int) uint64 {
	if h := obsHooks(); h != nil {
		gid := curGID()
		if h.BarrierArrive != nil {
			h.BarrierArrive(gid, b.ownerID())
		}
		t0 := time.Now()
		gen := b.wait(id)
		if h.BarrierDepart != nil {
			h.BarrierDepart(gid, b.ownerID(), time.Since(t0).Nanoseconds())
		}
		return gen
	}
	return b.wait(id)
}

func (b *Barrier) wait(id int) uint64 {
	g := b.gen.Load()
	if b.arrive(id) {
		b.release()
	} else {
		b.await(g)
	}
	return g
}

// arrive counts one arrival, reporting whether the caller completed the
// generation (and must release). Worker arrivals (id ≥ 0) climb the tree:
// the group's last arriver forwards the whole group count to the root in
// one add. All counters are monotonic; modular checks detect the last
// arrival, so generations need no reset and arrivals for the next phase —
// which cannot start before this release — reuse the same counters.
func (b *Barrier) arrive(id int) bool {
	add := int64(1)
	if id >= 0 && b.leaves != nil {
		leaf := id / barrierFanIn
		q := b.quota[leaf]
		if b.leaves[leaf].count.Add(1)%q != 0 {
			return false
		}
		add = q
	}
	return b.root.count.Add(add)%int64(b.parties) == 0
}

// release publishes the next generation and wakes parked waiters. The
// parked load is ordered after the generation store (sequentially
// consistent atomics), pairing with await's parked-increment-then-check,
// so a waiter committing to sleep is either seen here or sees the new
// generation itself.
func (b *Barrier) release() {
	b.gen.Add(1)
	if b.parked.Load() != 0 {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// await blocks until generation g completes: first an adaptively bounded
// spin on the generation word, then a parked sleep. The bound chases the
// iteration recent releases arrived at (doubled for slack, clamped) so
// phase-per-microsecond loops stay on the spin path while long compute
// phases shrink the bound and park almost immediately.
func (b *Barrier) await(g uint64) {
	bound := int(b.spin.Load())
	for i := 0; i < bound; i++ {
		if b.gen.Load() != g {
			// Released while spinning: retune only on real drift so the
			// steady state does not write-share the bound.
			if want := clampSpin(2 * (i + 1)); want > bound || want < bound/4 {
				b.spin.Store(int32(want))
			}
			return
		}
		if i&barrierYieldMask == barrierYieldMask {
			runtime.Gosched()
		}
	}
	b.spin.Store(int32(clampSpin(bound / 2)))
	b.parked.Add(1)
	b.mu.Lock()
	for b.gen.Load() == g {
		b.cond.Wait()
	}
	b.mu.Unlock()
	b.parked.Add(-1)
}

func clampSpin(n int) int {
	if n < barrierSpinMin {
		return barrierSpinMin
	}
	if n > barrierSpinMax {
		return barrierSpinMax
	}
	return n
}

// Parties returns the number of workers the barrier synchronises.
func (b *Barrier) Parties() int { return b.parties }
