package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// orderLog records task execution order for dependence assertions.
type orderLog struct {
	mu  sync.Mutex
	seq []int
}

func (l *orderLog) add(v int) {
	l.mu.Lock()
	l.seq = append(l.seq, v)
	l.mu.Unlock()
}

func (l *orderLog) order() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.seq...)
}

func (l *orderLog) pos(v int) int {
	for i, x := range l.order() {
		if x == v {
			return i
		}
	}
	return -1
}

// TestDependChainSerializes: inout tasks on one address must execute in
// spawn order, regardless of which worker runs them.
func TestDependChainSerializes(t *testing.T) {
	const n = 200
	var log orderLog
	var x int
	Region(4, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		d := Deps{InOut: []any{&x}}
		for i := 0; i < n; i++ {
			i := i
			SpawnDep(func() { log.add(i) }, d)
		}
		TaskWait()
	})
	got := log.order()
	if len(got) != n {
		t.Fatalf("ran %d tasks, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("execution order %v not serialized at index %d", got[:i+1], i)
		}
	}
}

// TestDependOutAfterIn: a writer spawned after readers (WAR hazard) waits
// for every reader.
func TestDependOutAfterIn(t *testing.T) {
	var log orderLog
	var x int
	Region(4, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		var slow sync.WaitGroup
		slow.Add(1)
		SpawnDep(func() { log.add(0) }, Deps{Out: []any{&x}})
		for r := 1; r <= 3; r++ {
			r := r
			SpawnDep(func() {
				if r == 1 {
					slow.Wait() // make one reader slow; the writer must still wait
				}
				log.add(r)
			}, Deps{In: []any{&x}})
		}
		SpawnDep(func() { log.add(4) }, Deps{Out: []any{&x}})
		slow.Done()
		TaskWait()
	})
	if got := log.order(); len(got) != 5 {
		t.Fatalf("ran %d tasks, want 5: %v", len(got), got)
	}
	if p := log.pos(4); p != 4 {
		t.Fatalf("second writer ran at position %d (order %v), want last", p, log.order())
	}
	if p := log.pos(0); p != 0 {
		t.Fatalf("first writer ran at position %d, want first", p)
	}
}

// TestDependDiamond: A → {B, C} → D.
func TestDependDiamond(t *testing.T) {
	var log orderLog
	var x, y1, y2 int
	Region(3, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		SpawnDep(func() { log.add(0) }, Deps{Out: []any{&x}})
		SpawnDep(func() { log.add(1) }, Deps{In: []any{&x}, Out: []any{&y1}})
		SpawnDep(func() { log.add(2) }, Deps{In: []any{&x}, Out: []any{&y2}})
		SpawnDep(func() { log.add(3) }, Deps{In: []any{&y1, &y2}})
		TaskWait()
	})
	if got := log.order(); len(got) != 4 {
		t.Fatalf("ran %d tasks, want 4: %v", len(got), got)
	}
	if log.pos(0) != 0 {
		t.Fatalf("source ran at %d, want 0 (order %v)", log.pos(0), log.order())
	}
	if log.pos(3) != 3 {
		t.Fatalf("sink ran at %d, want 3 (order %v)", log.pos(3), log.order())
	}
}

// TestDependIndependentKeysRunFreely: tasks on disjoint addresses carry no
// edges — all must complete without any serialization deadlock.
func TestDependIndependentKeysRunFreely(t *testing.T) {
	var count atomic.Int32
	keys := make([]int, 64)
	Region(4, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		for i := range keys {
			i := i
			SpawnDep(func() { count.Add(1) }, Deps{InOut: []any{&keys[i]}})
		}
		TaskWait()
	})
	if count.Load() != 64 {
		t.Fatalf("ran %d tasks, want 64", count.Load())
	}
}

// TestDependNilKeysIgnored: nil clause elements express absent boundary
// neighbours and must not create edges or crash.
func TestDependNilKeysIgnored(t *testing.T) {
	var ran atomic.Bool
	var x int
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		SpawnDep(func() { ran.Store(true) }, Deps{In: []any{nil}, InOut: []any{nil, &x, nil}})
		TaskWait()
	})
	if !ran.Load() {
		t.Fatal("task with nil clause elements did not run")
	}
}

// TestDependPanicReleasesSuccessors: a panicking predecessor must release —
// not deadlock — its successors, and the region must still re-raise the
// panic on the master.
func TestDependPanicReleasesSuccessors(t *testing.T) {
	var succRan atomic.Bool
	var x int
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("region swallowed the task panic")
		} else if r != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
		if !succRan.Load() {
			t.Fatal("successor of panicking predecessor never ran")
		}
	}()
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		SpawnDep(func() { panic("boom") }, Deps{Out: []any{&x}})
		SpawnDep(func() { succRan.Store(true) }, Deps{In: []any{&x}})
		TaskWait()
	})
}

// TestDependUnderNestedRegions: dependence chains inside a nested team are
// tracked by the nested team's own tracker and complete independently of
// the outer team's chains.
func TestDependUnderNestedRegions(t *testing.T) {
	var outer, inner orderLog
	var ox, ix int
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		for i := 0; i < 5; i++ {
			i := i
			SpawnDep(func() { outer.add(i) }, Deps{InOut: []any{&ox}})
		}
		Region(2, func(iw *Worker) {
			if iw.ID != 0 {
				return
			}
			for i := 0; i < 5; i++ {
				i := i
				SpawnDep(func() { inner.add(i) }, Deps{InOut: []any{&ix}})
			}
			TaskWait()
		})
		TaskWait()
	})
	for name, log := range map[string]*orderLog{"outer": &outer, "inner": &inner} {
		got := log.order()
		if len(got) != 5 {
			t.Fatalf("%s ran %d tasks, want 5", name, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("%s chain out of order: %v", name, got)
			}
		}
	}
}

// TestFutureDependGet: a future whose producer has dependence clauses
// resolves with the dependences honoured.
func TestFutureDependGet(t *testing.T) {
	var x int
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		SpawnDep(func() { x = 41 }, Deps{Out: []any{&x}})
		f := SpawnFutureDep(func() any { return x + 1 }, Deps{In: []any{&x}})
		if got := f.Get(); got != 42 {
			t.Errorf("future resolved to %v, want 42", got)
		}
	})
}

// TestFutureDependAcrossNestedTeam: demanding a dependent future of the
// enclosing team from inside a nested single-worker team must not deadlock
// — the getter steals the producer's predecessors from the outer deques.
func TestFutureDependAcrossNestedTeam(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		Region(1, func(w *Worker) {
			var x int
			SpawnDep(func() { x = 10 }, Deps{Out: []any{&x}})
			f := SpawnFutureDep(func() any { return x * 2 }, Deps{In: []any{&x}})
			Region(1, func(iw *Worker) {
				if got := f.Get(); got != 20 {
					t.Errorf("future resolved to %v, want 20", got)
				}
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested-team dependent future Get deadlocked")
	}
}

// TestDependGlobalScope: SpawnDep outside any parallel region still orders
// the chain (goroutine-per-task execution under the global tracker).
func TestDependGlobalScope(t *testing.T) {
	var log orderLog
	var x int
	for i := 0; i < 20; i++ {
		i := i
		SpawnDep(func() { log.add(i) }, Deps{InOut: []any{&x}})
	}
	TaskWait()
	got := log.order()
	if len(got) != 20 {
		t.Fatalf("ran %d tasks, want 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("global chain out of order: %v", got)
		}
	}
}

// TestDependTrackerCleanup: retiring whole chains must drop the per-address
// state so long regions do not accumulate tracker objects.
func TestDependTrackerCleanup(t *testing.T) {
	var x, y int
	var team *Team
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		team = w.Team
		for i := 0; i < 50; i++ {
			SpawnDep(func() {}, Deps{InOut: []any{&x}, In: []any{&y}})
			SpawnDep(func() {}, Deps{Out: []any{&y}})
		}
		TaskWait()
	})
	tr := team.depTracker()
	tr.mu.Lock()
	live := len(tr.objs)
	tr.mu.Unlock()
	if live != 0 {
		t.Fatalf("tracker retains %d address objects after all tasks retired, want 0", live)
	}
}

// TestTaskGroupScopeWaitsOwnTasks: the scope joins tasks spawned inside it
// (including descendants spawned by those tasks) before returning.
func TestTaskGroupScopeWaitsOwnTasks(t *testing.T) {
	var child, grandchild atomic.Bool
	Region(3, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		TaskGroupScope(func() {
			Spawn(func() {
				grandchildSpawner := func() { grandchild.Store(true) }
				Spawn(grandchildSpawner)
				child.Store(true)
			})
		})
		if !child.Load() {
			t.Error("scope returned before child task completed")
		}
		if !grandchild.Load() {
			t.Error("scope returned before descendant task completed")
		}
	})
}

// TestTaskGroupScopeNested: inner scopes join before outer scopes.
func TestTaskGroupScopeNested(t *testing.T) {
	var innerDone, outerDone atomic.Bool
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		TaskGroupScope(func() {
			Spawn(func() { outerDone.Store(true) })
			TaskGroupScope(func() {
				Spawn(func() { innerDone.Store(true) })
			})
			if !innerDone.Load() {
				t.Error("inner scope returned before its task completed")
			}
		})
		if !outerDone.Load() {
			t.Error("outer scope returned before its task completed")
		}
	})
}

// TestTaskGroupScopeOutsideRegion degrades to a global join.
func TestTaskGroupScopeOutsideRegion(t *testing.T) {
	var ran atomic.Bool
	TaskGroupScope(func() {
		Spawn(func() { ran.Store(true) })
	})
	if !ran.Load() {
		t.Fatal("TaskGroupScope outside region returned before spawned task completed")
	}
}

// TestDependStress: many interleaved chains across a team, under load, all
// orderings preserved. Primarily a race-detector workout.
func TestDependStress(t *testing.T) {
	const chains, length = 8, 50
	logs := make([]orderLog, chains)
	keys := make([]int, chains)
	Region(4, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		for i := 0; i < length; i++ {
			for c := 0; c < chains; c++ {
				c, i := c, i
				SpawnDep(func() { logs[c].add(i) }, Deps{InOut: []any{&keys[c]}})
			}
		}
		TaskWait()
	})
	for c := range logs {
		got := logs[c].order()
		if len(got) != length {
			t.Fatalf("chain %d ran %d tasks, want %d", c, len(got), length)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("chain %d out of order at %d: %v", c, i, got)
			}
		}
	}
}

// TestTaskGroupScopeTasksAreStolen: scope tasks count toward the team
// group (the parent chain), so teammates parked in the region-end join
// wake up and steal them — a @TaskLoop must not serialize on its caller.
func TestTaskGroupScopeTasksAreStolen(t *testing.T) {
	var byOthers atomic.Int32
	Region(4, func(w *Worker) {
		if w.ID != 0 {
			return // teammates proceed to the region-end join
		}
		gate := make(chan struct{})
		TaskGroupScope(func() {
			for i := 0; i < 8; i++ {
				Spawn(func() {
					if ThreadID() != 0 {
						byOthers.Add(1)
					}
					<-gate
				})
			}
			// Teammates at the region-end join see the team group pending
			// (scope counts propagate) and steal from our deque; wait for
			// evidence before releasing the tasks.
			deadline := time.Now().Add(10 * time.Second)
			for byOthers.Load() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			close(gate)
		})
	})
	if byOthers.Load() == 0 {
		t.Fatal("no scope task was executed by a teammate: scoped tasks are invisible to the team join")
	}
}

// TestFutureSubSpawnAcrossNestedTeam: a producer that itself spawns,
// executed by a nested team's worker via Get, must not strand its
// sub-spawn between the enclosing team's group and the nested team's
// deque (cross-team group adoption would deadlock the enclosing join).
func TestFutureSubSpawnAcrossNestedTeam(t *testing.T) {
	var sub atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		Region(2, func(w *Worker) {
			if w.ID != 0 {
				return
			}
			f := SpawnFuture(func() any {
				Spawn(func() { sub.Store(true) })
				return 1
			})
			Region(1, func(*Worker) {
				if got := f.Get(); got != 1 {
					t.Errorf("future = %v, want 1", got)
				}
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sub-spawning producer executed across nested teams deadlocked the region join")
	}
	if !sub.Load() {
		t.Fatal("sub-spawned task never ran")
	}
}
