package rt

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"

	"aomplib/internal/obs"
)

// A region exercising every construct must light up the corresponding
// tracer counters, and the drained trace must be valid Chrome JSON.
func TestObsEmitCoverage(t *testing.T) {
	before := obs.ReadStats()
	obs.StartTrace()
	defer obs.EnableTracing(false)

	Region(4, func(w *Worker) {
		if w.ID == 0 {
			var x, y int
			SpawnDep(func() { x = 1 }, Deps{Out: []any{&x}})
			SpawnDep(func() { y = x }, Deps{In: []any{&x}, Out: []any{&y}})
			for i := 0; i < 32; i++ {
				Spawn(func() {})
			}
		}
		w.Team.Barrier().Wait()
		TaskWait()
	})
	// Out-of-region spawn: the inline-task path.
	done := make(chan struct{})
	Spawn(func() { close(done) })
	<-done

	st := obs.ReadStats()
	delta := func(name string, now, then uint64) uint64 {
		t.Helper()
		if now <= then {
			t.Errorf("%s did not advance: %d -> %d", name, then, now)
		}
		return now - then
	}
	delta("RegionForks", st.RegionForks, before.RegionForks)
	delta("RegionJoins", st.RegionJoins, before.RegionJoins)
	delta("TeamLeases", st.TeamLeases, before.TeamLeases)
	delta("TasksSpawned", st.TasksSpawned, before.TasksSpawned)
	delta("TasksCompleted", st.TasksCompleted, before.TasksCompleted)
	delta("TasksInlined", st.TasksInlined, before.TasksInlined)
	delta("BarrierWaits", st.BarrierWaits, before.BarrierWaits)
	delta("DepReleases", st.DepReleases, before.DepReleases)
	delta("StealAttempts", st.StealAttempts, before.StealAttempts)
	delta("EventsRecorded", st.EventsRecorded, before.EventsRecorded)

	var buf bytes.Buffer
	if err := obs.StopTrace(&buf); err != nil {
		t.Fatalf("StopTrace: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
	tracks := 0
	for _, ev := range trace.TraceEvents {
		if ev["name"] == "thread_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				if n, _ := args["name"].(string); strings.HasPrefix(n, "worker ") {
					tracks++
				}
			}
		}
	}
	if tracks < 4 {
		t.Fatalf("trace has %d worker tracks, want >= 4 (one per team worker)", tracks)
	}
}

// The pool must attribute cold spawns with hot teams off to the Disabled
// counter, not Misses.
func TestPoolStatsDisabledCounter(t *testing.T) {
	prev := SetHotTeams(false)
	defer SetHotTeams(prev)
	before := ReadPoolStats()
	Region(2, func(w *Worker) {})
	st := ReadPoolStats()
	if st.Disabled != before.Disabled+1 {
		t.Fatalf("Disabled = %d, want %d", st.Disabled, before.Disabled+1)
	}
	if st.Misses != before.Misses {
		t.Fatalf("Misses advanced (%d -> %d) for a disabled-pool entry", before.Misses, st.Misses)
	}
}

// A custom tool (SetHooks) must receive events, and EnableTracing(false)
// must not evict it.
func TestCustomToolHooks(t *testing.T) {
	var forks, joins int
	prev := obs.SetHooks(&obs.Hooks{
		RegionFork: func(obs.WorkerID, uint64, int, int) { forks++ },
		RegionJoin: func(obs.WorkerID, uint64, int) { joins++ },
	})
	defer obs.SetHooks(prev)
	Region(2, func(w *Worker) {})
	if forks != 1 || joins != 1 {
		t.Fatalf("custom tool saw forks=%d joins=%d, want 1/1", forks, joins)
	}
	obs.EnableTracing(false)
	Region(2, func(w *Worker) {})
	if forks != 2 {
		t.Fatalf("EnableTracing(false) evicted the custom tool (forks=%d)", forks)
	}
}

// The CI allocation gates for the tracing-enabled emit path: a warm region
// entry and the task spawn path must stay 0 allocs/op with the tracer
// installed and recording. Both the ring-append and the buffer-full drop
// path are allocation-free; a long benchmark run exercises both.

func BenchmarkRegionEntryWarmTraced(b *testing.B) {
	prev := SetHotTeams(true)
	defer SetHotTeams(prev)
	obs.StartTrace()
	defer obs.EnableTracing(false)
	b.ReportAllocs()
	Region(2, func(w *Worker) {}) // warm team + register rings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1023 == 0 {
			// Reset the rings periodically so the gate measures the record
			// path, not (mostly) the cheaper buffer-full drop path.
			obs.StartTrace()
		}
		Region(2, func(w *Worker) {})
	}
}

func BenchmarkTaskSpawnWaitTraced(b *testing.B) {
	obs.StartTrace()
	defer obs.EnableTracing(false)
	b.ReportAllocs()
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		var x int
		body := func() { x++ }
		Spawn(body)
		TaskWait() // register rings before the measured loop
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i&4095 == 0 {
				// Keep the rings drained so spawns measure the record path.
				obs.StartTrace()
			}
			Spawn(body)
			if i&63 == 63 {
				TaskWait()
			}
		}
		TaskWait()
		b.StopTimer()
		_ = x
	})
}

// The CI allocation gates for the metrics-enabled emit path mirror the
// traced ones: with the always-on registry recording, a warm region entry
// and the task spawn path must stay 0 allocs/op — the registry's record
// path is preallocated padded atomics and lossy pairing tables, nothing
// allocating.

func BenchmarkRegionEntryWarmMetrics(b *testing.B) {
	prev := SetHotTeams(true)
	defer SetHotTeams(prev)
	prevM := obs.EnableMetrics(true)
	defer obs.EnableMetrics(prevM)
	b.ReportAllocs()
	Region(2, func(w *Worker) {}) // warm team + allocate shards
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Region(2, func(w *Worker) {})
	}
}

func BenchmarkTaskSpawnWaitMetrics(b *testing.B) {
	prevM := obs.EnableMetrics(true)
	defer obs.EnableMetrics(prevM)
	b.ReportAllocs()
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		var x int
		body := func() { x++ }
		Spawn(body)
		TaskWait() // touch the shards before the measured loop
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Spawn(body)
			if i&63 == 63 {
				TaskWait()
			}
		}
		TaskWait()
		b.StopTimer()
		_ = x
	})
}

// Per-tenant metric rows must carry the tenant names the admission
// controller registered, so exposition labels and dashboards are
// name-addressed rather than id-addressed.
func TestMetricsTenantRegistration(t *testing.T) {
	prevM := obs.EnableMetrics(true)
	defer obs.EnableMetrics(prevM)
	prevAdm := SetAdmissionControl(true)
	defer SetAdmissionControl(prevAdm)

	tok := EnterTenant("metrics-reg-tenant")
	Region(2, func(w *Worker) {})
	tok.Exit()

	snap := obs.ReadMetrics()
	for _, tn := range snap.Tenants {
		if tn.Name == "metrics-reg-tenant" && tn.Admits > 0 {
			return
		}
	}
	t.Fatalf("no admitted row named metrics-reg-tenant in %+v", snap.Tenants)
}

// TestHotTeamTraceDrainRacesRetirement drains the trace (StopTrace →
// ring drains → immediate StartTrace reset) while teams are being
// retired under it — worker panics poisoning teams, SetPoolSize evicting
// cached ones — so retiring workers' final emits race the drain's
// writer-exclusion handshake. Survival under -race is the point: no torn
// records, no deadlock between a drain and a dying team, and the exported
// JSON stays parseable every cycle.
func TestHotTeamTraceDrainRacesRetirement(t *testing.T) {
	defer resetPool(t)()
	prevPool := SetPoolSize(4)
	defer SetPoolSize(prevPool)
	obs.StartTrace()
	defer func() {
		obs.StopTrace(io.Discard)
		obs.EnableTracing(false)
	}()

	stop := make(chan struct{})
	var drains sync.WaitGroup
	drains.Add(1)
	go func() {
		defer drains.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := obs.StopTrace(&buf); err != nil {
				t.Errorf("StopTrace during retirement churn: %v", err)
				return
			}
			if !json.Valid(buf.Bytes()) {
				t.Error("drain emitted invalid JSON during retirement churn")
				return
			}
			obs.StartTrace()
		}
	}()

	const goroutines, iters = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%5 == 0 {
					SetPoolSize(1 + (i/5)%8) // evictions retire cached teams
				}
				func() {
					defer func() { recover() }()
					Region(2, func(w *Worker) {
						Spawn(func() {})
						w.Team.Barrier().Wait()
						if w.ID == 1 && (g+i)%7 == 0 {
							panic("retire under drain")
						}
					})
				}()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	drains.Wait()
}
