package rt

import (
	"runtime"
	"sync"
	"testing"

	"aomplib/internal/obs"
	"aomplib/internal/sched"
)

// adaptResolve drives the locked resolver the way BeginFor's Instance
// factory does.
func adaptResolve(t *Team, key any, declared sched.Kind, n, chunk int) (sched.Kind, int, *loopAdapt) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.adaptResolveLocked(key, declared, n, chunk)
}

// forceMeasurable makes the resolver trust measured imbalance regardless
// of how many CPUs the test machine has, so the feedback-policy tests
// exercise the re-tuning paths even on single-CPU runners.
func forceMeasurable(t *testing.T) {
	t.Helper()
	prev := adaptMeasurable
	adaptMeasurable = func(int) bool { return true }
	t.Cleanup(func() { adaptMeasurable = prev })
}

// TestAdaptResolvePolicy pins the feedback policy state machine: first
// sight tunes from shape (exactly Auto's choice), a skewed encounter
// moves to weighted steal and then refines the chunk, a balanced one
// coarsens it (capped), and the hysteresis band changes nothing.
func TestAdaptResolvePolicy(t *testing.T) {
	defer resetPool(t)()
	forceMeasurable(t)
	team := captureTeam(4)
	const n = 1024
	key := "policy-loop"

	k, c, st := adaptResolve(team, key, sched.Adaptive, n, 0)
	if want := sched.Resolve(sched.Auto, n, 4); k != want || c != 0 {
		t.Fatalf("first sight resolved to %v chunk %d, want shape heuristic %v chunk 0", k, c, want)
	}

	st.publish(2.0) // skewed → upgrade to weighted steal at the default grain
	k2, c2, _ := adaptResolve(team, key, sched.Adaptive, n, 0)
	if k2 != sched.WeightedSteal || c2 != adaptDefaultChunk(n, 4) {
		t.Fatalf("skewed re-encounter: %v chunk %d, want WeightedSteal chunk %d", k2, c2, adaptDefaultChunk(n, 4))
	}

	st.publish(2.0) // still skewed while balancing → refine grain
	if k3, c3, _ := adaptResolve(team, key, sched.Adaptive, n, 0); k3 != sched.WeightedSteal || c3 != c2/2 {
		t.Fatalf("second skewed re-encounter: %v chunk %d, want WeightedSteal chunk %d", k3, c3, c2/2)
	}

	st.publish(1.0) // balanced after skew → coarsen, bounded by n/(2*Size)
	if _, c4, _ := adaptResolve(team, key, sched.Adaptive, n, 0); c4 != c2 {
		t.Fatalf("balanced re-encounter chunk %d, want doubled back to %d", c4, c2)
	}

	st.publish(1.15) // hysteresis band → keep
	if k5, c5, _ := adaptResolve(team, key, sched.Adaptive, n, 0); k5 != sched.WeightedSteal || c5 != c2 {
		t.Fatalf("hysteresis re-encounter: %v chunk %d, want unchanged WeightedSteal %d", k5, c5, c2)
	}

	// A reshaped loop (new trip count) re-tunes from shape, not stale state.
	st.publish(2.0)
	if k6, c6, _ := adaptResolve(team, key, sched.Adaptive, 4*n, 0); k6 != sched.Resolve(sched.Auto, 4*n, 4) || c6 != 0 {
		t.Fatalf("reshaped loop resolved to %v chunk %d, want fresh shape heuristic", k6, c6)
	}
}

// TestAdaptResolveAutoUpgrades pins Auto's contract: the first sight
// keeps the shape heuristic (plain Auto users see exactly what Resolve
// gives them), and only a measured skewed re-encounter upgrades the
// construct to the weighted steal schedule.
func TestAdaptResolveAutoUpgrades(t *testing.T) {
	defer resetPool(t)()
	forceMeasurable(t)
	team := captureTeam(4)
	const n = 4096
	key := "auto-loop"

	k, _, st := adaptResolve(team, key, sched.Auto, n, 0)
	if want := sched.Resolve(sched.Auto, n, 4); k != want {
		t.Fatalf("Auto first sight resolved to %v, want shape heuristic %v", k, want)
	}
	st.publish(3.0)
	if k2, _, _ := adaptResolve(team, key, sched.Auto, n, 0); k2 != sched.WeightedSteal {
		t.Fatalf("Auto after measured imbalance resolved to %v, want WeightedSteal", k2)
	}
	st.publish(1.0)
	if k3, _, _ := adaptResolve(team, key, sched.Auto, n, 0); k3 != sched.WeightedSteal {
		t.Fatalf("balanced Auto re-encounter fell back to %v, want to keep WeightedSteal", k3)
	}
}

// TestAdaptStateTableBounded pins the runaway-key guard: more distinct
// constructs than maxAdaptLoops reset the table instead of growing it
// without bound.
func TestAdaptStateTableBounded(t *testing.T) {
	defer resetPool(t)()
	team := captureTeam(2)
	for i := 0; i < maxAdaptLoops+10; i++ {
		adaptResolve(team, i, sched.Adaptive, 256, 0)
	}
	team.mu.Lock()
	size := len(team.adapt)
	team.mu.Unlock()
	if size > maxAdaptLoops {
		t.Fatalf("adapt table grew to %d entries, bound is %d", size, maxAdaptLoops)
	}
}

// TestSpeedWeightsMeanFill pins the estimator's partial-training rule:
// untrained workers (a worker whose share was wholly stolen never
// executes an iteration) are assumed average, not starved, and a fully
// untrained team carves uniformly (nil weights).
func TestSpeedWeightsMeanFill(t *testing.T) {
	defer resetPool(t)()
	team := captureTeam(3)
	team.mu.Lock()
	ws := team.speedWeightsLocked()
	team.mu.Unlock()
	if ws != nil {
		t.Fatalf("untrained team produced weights %v, want nil (uniform carve)", ws)
	}
	team.workers[0].updateSpeed(2000, 1000) // 2.0 iters/ns
	team.workers[2].updateSpeed(1000, 1000) // 1.0 iters/ns
	team.mu.Lock()
	ws = team.speedWeightsLocked()
	team.mu.Unlock()
	want := []float64{2.0, 1.5, 1.0} // untrained worker 1 gets the trained mean
	for i, w := range want {
		if ws[i] != w {
			t.Fatalf("weights = %v, want %v", ws, want)
		}
	}
}

// TestSpeedEWMASmoothing pins the estimator: the first share sets the
// rate, later shares move it by alpha toward the new measurement, and
// degenerate shares (zero iterations or time) change nothing.
func TestSpeedEWMASmoothing(t *testing.T) {
	w := &Worker{}
	w.updateSpeed(0, 100) // degenerate: ignored
	w.updateSpeed(100, 0)
	if s := w.Speed(); s != 0 {
		t.Fatalf("degenerate shares trained speed to %v", s)
	}
	w.updateSpeed(1000, 1000)
	if s := w.Speed(); s != 1.0 {
		t.Fatalf("first share trained to %v, want 1.0", s)
	}
	w.updateSpeed(3000, 1000) // EWMA: 1.0 + 0.25*(3.0-1.0) = 1.5
	if s := w.Speed(); s != 1.5 {
		t.Fatalf("second share trained to %v, want 1.5", s)
	}
}

// adaptSpanCount is a SpanFunc that counts iterations into a *[n]int32
// style slice via arg.
func countSpan(sub sched.Space, arg any) {
	hits := arg.(*[]int32)
	for i := 0; i < sub.Count(); i++ {
		(*hits)[sub.At(i)]++
	}
}

// TestHotTeamAdaptiveStatePersistsAcrossLeases pins the tentpole wiring
// end to end: an Adaptive for construct keyed the same way re-encounters
// its state on the hot team across region entries — the state's round
// counter advances and the loop keeps covering every iteration exactly
// once while re-tuning.
func TestHotTeamAdaptiveStatePersistsAcrossLeases(t *testing.T) {
	defer resetPool(t)()
	const n, rounds = 512, 5
	key := "persist-loop"
	var team *Team
	for r := 0; r < rounds; r++ {
		hits := make([]int32, n)
		ptr := &hits
		Region(4, func(w *Worker) {
			if w.ID == 0 {
				team = w.Team
			}
			ForSpan(w, sched.Space{Lo: 0, Hi: n, Step: 1}, sched.Adaptive, key, 0, countSpan, ptr)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("round %d: iteration %d executed %d times", r, i, h)
			}
		}
	}
	team.mu.Lock()
	st := team.adapt[key]
	team.mu.Unlock()
	if st == nil {
		t.Fatal("no adaptive state survived on the hot team")
	}
	if st.rounds != rounds {
		t.Fatalf("state observed %d rounds, want %d — leases dropped encounters", st.rounds, rounds)
	}
}

// TestAdaptResolveBalancedDowngradesToStatic pins the downgrade path: a
// loop whose shape heuristic picked a dispensing schedule (here Guided)
// and that measures balanced — without ever having been skewed — drops
// to static dispatch, and upgrades to weighted steal the moment skew
// appears.
func TestAdaptResolveBalancedDowngradesToStatic(t *testing.T) {
	defer resetPool(t)()
	forceMeasurable(t)
	team := captureTeam(4)
	key := "balanced-loop"
	k, _, st := adaptResolve(team, key, sched.Adaptive, 1024, 0)
	if k != sched.Guided {
		t.Fatalf("first sight of a 1024-trip loop resolved to %v, want shape heuristic Guided", k)
	}
	st.publish(1.0)
	if k, _, _ := adaptResolve(team, key, sched.Adaptive, 1024, 0); k != sched.StaticBlock {
		t.Fatalf("balanced never-skewed loop resolved to %v, want StaticBlock", k)
	}
	st.publish(2.0)
	if k, _, _ := adaptResolve(team, key, sched.Adaptive, 1024, 0); k != sched.WeightedSteal {
		t.Fatalf("skew on a downgraded loop resolved to %v, want WeightedSteal", k)
	}
	// Once skewed, balanced re-encounters must NOT flip back to static —
	// that would oscillate under asymmetry.
	st.publish(1.0)
	if k, _, _ := adaptResolve(team, key, sched.Adaptive, 1024, 0); k != sched.WeightedSteal {
		t.Fatalf("balanced once-skewed loop resolved to %v, want to stay WeightedSteal", k)
	}
}

// TestAdaptResolveUnmeasurableKeepsState pins the measurability guard:
// when the team time-shares fewer CPUs than it has workers, per-share
// wall times read as massive imbalance on perfectly balanced loops, so
// the resolver must ignore the signal and keep its last resolution
// instead of converging every loop onto fine-grained stealing.
func TestAdaptResolveUnmeasurableKeepsState(t *testing.T) {
	defer resetPool(t)()
	prev := adaptMeasurable
	adaptMeasurable = func(int) bool { return false }
	t.Cleanup(func() { adaptMeasurable = prev })
	team := captureTeam(4)
	key := "unmeasurable-loop"
	k, c, st := adaptResolve(team, key, sched.Adaptive, 1024, 0)
	if k != sched.StaticBlock {
		t.Fatalf("oversubscribed first sight resolved to %v, want cheapest dispatch StaticBlock", k)
	}
	st.publish(3.9) // time-sharing artifact, not real imbalance
	if k2, c2, _ := adaptResolve(team, key, sched.Adaptive, 1024, 0); k2 != k || c2 != c {
		t.Fatalf("unmeasurable re-encounter re-tuned to %v chunk %d from %v chunk %d", k2, c2, k, c)
	}
}

// TestHotTeamAdaptiveChurnStress hammers encounter-state reuse across
// lease/retire churn: concurrent regions each running an Adaptive loop
// under its own key while the pool is resized and toggled underneath.
// Runs under -race in CI (the HotTeam test pattern); correctness here is
// exactly-once coverage and no data race on the shared adapt maps.
func TestHotTeamAdaptiveChurnStress(t *testing.T) {
	defer resetPool(t)()
	prevSize := SetPoolSize(2)
	defer SetPoolSize(prevSize)
	const goroutines, repeats, n = 4, 8, 256
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := g // distinct construct identity per goroutine
			for r := 0; r < repeats; r++ {
				hits := make([]int32, n)
				ptr := &hits
				Region(3, func(w *Worker) {
					ForSpan(w, sched.Space{Lo: 0, Hi: n, Step: 1}, sched.Adaptive, key, 0, countSpan, ptr)
				})
				for i, h := range hits {
					if h != 1 {
						select {
						case errs <- "iteration executed wrong number of times":
						default:
						}
						_ = i
						return
					}
				}
			}
		}(g)
	}
	churn := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-churn:
				return
			default:
			}
			SetPoolSize(1 + i%4)
			SetHotTeams(i%8 != 7) // brief cold windows retire teams mid-run
			runtime.Gosched()     // keep the churn loop from starving workers
		}
	}()
	wg.Wait()
	close(churn)
	SetHotTeams(true)
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestAsymSpinDelay pins the simulation hook's contract: only configured
// worker ids spin, out-of-range and unconfigured ids return untouched,
// and clearing the table disables everything.
func TestAsymSpinDelay(t *testing.T) {
	SetAsymSpin([]int{0, 40})
	defer SetAsymSpin(nil)
	before := asymSink.Load()
	AsymDelay(0, 100) // configured 0 spins: no-op
	AsymDelay(2, 100) // beyond the table: no-op
	AsymDelay(-1, 100)
	AsymDelay(1, 0) // no iterations: no-op
	if asymSink.Load() != before {
		t.Fatal("no-op AsymDelay calls touched the sink")
	}
	AsymDelay(1, 100)
	if asymSink.Load() == before {
		t.Fatal("configured worker did not spin")
	}
	SetAsymSpin(nil)
	before = asymSink.Load()
	AsymDelay(1, 100)
	if asymSink.Load() != before {
		t.Fatal("cleared table still spins")
	}
}

// TestWorkerRatesAndStealProbes pins the observability satellites: a
// steal-scheduled loop feeds the per-worker rate counters (iterations
// and work time via LoopRate) and the probes-per-steal counter, visible
// through both obs.ReadWorkerRates and obs.Stats.StealProbes.
func TestWorkerRatesAndStealProbes(t *testing.T) {
	defer resetPool(t)()
	obs.EnableTracing(true)
	defer obs.EnableTracing(false)
	before := obs.ReadStats()
	const n = 4096
	hits := make([]int32, n)
	ptr := &hits
	Region(4, func(w *Worker) {
		ForSpan(w, sched.Space{Lo: 0, Hi: n, Step: 1}, sched.WeightedSteal, "rates-loop", 4, countSpan, ptr)
	})
	after := obs.ReadStats()
	if after.StealProbes == before.StealProbes {
		t.Error("weighted steal loop recorded no steal probes")
	}
	var iters int64
	for _, r := range obs.ReadWorkerRates() {
		iters += r.Iters
	}
	if iters < n {
		t.Errorf("worker rates account for %d iterations, want at least %d", iters, n)
	}
}
