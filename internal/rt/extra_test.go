package rt

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestTaskScopeSelection(t *testing.T) {
	if TaskScope() != globalTasks {
		t.Fatal("sequential TaskScope is not the global group")
	}
	Region(2, func(w *Worker) {
		if TaskScope() != w.Team.Tasks() {
			t.Error("in-region TaskScope is not the team group")
		}
	})
}

func TestSpawnOutsideRegion(t *testing.T) {
	var ran atomic.Bool
	Spawn(func() {
		if Current() != nil {
			t.Error("task outside region inherited a worker")
		}
		ran.Store(true)
	})
	globalTasks.Wait()
	if !ran.Load() {
		t.Fatal("task did not run")
	}
}

func TestResolvedFuture(t *testing.T) {
	f := ResolvedFuture("v")
	if !f.Resolved() || f.Get() != "v" {
		t.Fatal("resolved future broken")
	}
}

func TestFutureUnresolvedInitially(t *testing.T) {
	f := NewFuture()
	if f.Resolved() {
		t.Fatal("fresh future resolved")
	}
}

func TestWorkerString(t *testing.T) {
	Region(2, func(w *Worker) {
		s := w.String()
		if !strings.Contains(s, "/2") || !strings.Contains(s, "level 1") {
			t.Errorf("String() = %q", s)
		}
	})
}

func TestBarrierParties(t *testing.T) {
	if NewBarrier(3).Parties() != 3 {
		t.Fatal("Parties wrong")
	}
	if NewBarrier(0).Parties() != 1 {
		t.Fatal("parties floor missing")
	}
}

func TestNestedNumThreads(t *testing.T) {
	Region(2, func(outer *Worker) {
		if NumThreads() != 2 {
			t.Errorf("outer NumThreads = %d", NumThreads())
		}
		Region(3, func(inner *Worker) {
			if NumThreads() != 3 {
				t.Errorf("inner NumThreads = %d", NumThreads())
			}
		})
		if NumThreads() != 2 {
			t.Errorf("restored NumThreads = %d", NumThreads())
		}
	})
}

func TestTaskGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Done did not panic")
		}
	}()
	NewTaskGroup().Done()
}

func TestActiveForNilOutsideConstruct(t *testing.T) {
	Region(2, func(w *Worker) {
		if w.ActiveFor() != nil {
			t.Error("ActiveFor non-nil outside for construct")
		}
	})
}

func TestTasksInheritTeamAcrossSpawnChain(t *testing.T) {
	var depth2 atomic.Int32
	Region(2, func(w *Worker) {
		if w.ID != 0 {
			return
		}
		Spawn(func() {
			// Task spawned from a task still joins the region's group.
			Spawn(func() {
				if Current() == nil || Current().Team != w.Team {
					t.Error("nested task lost team context")
				}
				depth2.Add(1)
			})
		})
	})
	if depth2.Load() != 1 {
		t.Fatalf("nested task ran %d times", depth2.Load())
	}
}
