package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"aomplib/internal/sched"
)

func TestRegionSpawnsExactTeam(t *testing.T) {
	const n = 5
	var ids sync.Map
	var count atomic.Int32
	Region(n, func(w *Worker) {
		count.Add(1)
		if _, dup := ids.LoadOrStore(w.ID, true); dup {
			t.Errorf("duplicate worker id %d", w.ID)
		}
		if w.Team.Size != n {
			t.Errorf("team size %d, want %d", w.Team.Size, n)
		}
	})
	if count.Load() != n {
		t.Fatalf("body executed %d times, want %d", count.Load(), n)
	}
	for id := 0; id < n; id++ {
		if _, ok := ids.Load(id); !ok {
			t.Errorf("missing worker id %d", id)
		}
	}
}

func TestRegionDefaultThreads(t *testing.T) {
	var count atomic.Int32
	Region(0, func(w *Worker) { count.Add(1) })
	if int(count.Load()) != DefaultThreads() {
		t.Fatalf("default region ran %d workers, want %d", count.Load(), DefaultThreads())
	}
}

func TestCurrentInsideAndOutside(t *testing.T) {
	if Current() != nil {
		t.Fatal("Current() non-nil outside region")
	}
	if ThreadID() != 0 || NumThreads() != 1 {
		t.Fatal("sequential defaults wrong")
	}
	Region(3, func(w *Worker) {
		if Current() != w {
			t.Errorf("Current() != w inside region")
		}
		if ThreadID() != w.ID {
			t.Errorf("ThreadID() = %d, want %d", ThreadID(), w.ID)
		}
		if NumThreads() != 3 {
			t.Errorf("NumThreads() = %d, want 3", NumThreads())
		}
	})
	if Current() != nil {
		t.Fatal("Current() leaked after region")
	}
}

func TestNestedRegions(t *testing.T) {
	var inner atomic.Int32
	Region(2, func(outer *Worker) {
		Region(2, func(w *Worker) {
			inner.Add(1)
			if w.Team.Level() != 2 {
				t.Errorf("inner level = %d, want 2", w.Team.Level())
			}
			if w.Team.Parent() != outer {
				t.Errorf("inner parent mismatch")
			}
			if w.Team.Size != 2 {
				t.Errorf("inner team size = %d", w.Team.Size)
			}
		})
		if Current() != outer {
			t.Errorf("outer context not restored after nested region")
		}
	})
	if inner.Load() != 4 {
		t.Fatalf("nested bodies ran %d times, want 4", inner.Load())
	}
}

func TestRegionPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Region(4, func(w *Worker) {
		if w.ID == 2 {
			panic("boom")
		}
	})
}

func TestBarrierPhases(t *testing.T) {
	const n, phases = 4, 25
	b := NewBarrier(n)
	var before [phases]atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				before[p].Add(1)
				b.Wait()
				// After the barrier, every party must have incremented.
				if got := before[p].Load(); got != n {
					t.Errorf("phase %d: saw %d arrivals after barrier", p, got)
				}
			}
		}()
	}
	wg.Wait()
}

func TestBarrierGeneration(t *testing.T) {
	b := NewBarrier(1)
	if g0, g1 := b.Wait(), b.Wait(); g0 != 0 || g1 != 1 {
		t.Fatalf("generations = %d,%d want 0,1", g0, g1)
	}
}

func TestSingleClaimedOnce(t *testing.T) {
	key := "single-test"
	const n, encounters = 4, 10
	var execs [encounters]atomic.Int32
	Region(n, func(w *Worker) {
		for e := 0; e < encounters; e++ {
			claim, st := SingleBegin(w, key, true)
			if claim {
				execs[e].Add(1)
				st.Publish(e * 10)
			}
			if got := st.Await().(int); got != e*10 {
				t.Errorf("broadcast value = %d, want %d", got, e*10)
			}
		}
	})
	for e := 0; e < encounters; e++ {
		if execs[e].Load() != 1 {
			t.Errorf("encounter %d executed %d times, want 1", e, execs[e].Load())
		}
	}
}

func TestMasterOnlyWorkerZero(t *testing.T) {
	key := "master-test"
	var executor atomic.Int32
	executor.Store(-1)
	Region(4, func(w *Worker) {
		claim, st := MasterBegin(w, key, true)
		if claim {
			executor.Store(int32(w.ID))
			st.Publish("v")
		}
		if st.Await() != "v" {
			t.Errorf("master broadcast lost")
		}
	})
	if executor.Load() != 0 {
		t.Fatalf("master executed by worker %d, want 0", executor.Load())
	}
}

func TestBeginForStaticEncountersIndependent(t *testing.T) {
	key := "for-test"
	sp := sched.Space{Lo: 0, Hi: 100, Step: 1}
	var sum atomic.Int64
	Region(4, func(w *Worker) {
		for e := 0; e < 3; e++ { // repeated encounters, as in LUFact's outer loop
			fc := BeginFor(w, key, sp, sched.StaticBlock, 1)
			sub := sched.Block(fc.Space, w.Team.Size, w.ID)
			for i := sub.Lo; i < sub.Hi; i += sub.Step {
				sum.Add(int64(i))
			}
			fc.EndFor()
		}
	})
	if sum.Load() != 3*99*100/2 {
		t.Fatalf("sum = %d, want %d", sum.Load(), 3*99*100/2)
	}
}

func TestDynamicForExactlyOnce(t *testing.T) {
	key := "dynfor-test"
	const n = 500
	sp := sched.Space{Lo: 0, Hi: n, Step: 1}
	hits := make([]atomic.Int32, n)
	Region(4, func(w *Worker) {
		fc := BeginFor(w, key, sp, sched.Dynamic, 7)
		defer fc.EndFor()
		for {
			sub, ok := fc.Dispense()
			if !ok {
				break
			}
			for i := sub.Lo; i < sub.Hi; i += sub.Step {
				hits[i].Add(1)
			}
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestOrderedSequencing(t *testing.T) {
	key := "ordered-test"
	const n = 64
	sp := sched.Space{Lo: 0, Hi: n, Step: 1}
	var order []int
	var mu sync.Mutex
	Region(4, func(w *Worker) {
		fc := BeginFor(w, key, sp, sched.Dynamic, 1)
		defer fc.EndFor()
		for {
			sub, ok := fc.Dispense()
			if !ok {
				break
			}
			for i := sub.Lo; i < sub.Hi; i += sub.Step {
				fc.Ordered(i, func() {
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
				})
			}
		}
	})
	if len(order) != n {
		t.Fatalf("ordered ran %d sections, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ordered sequence broken at %d: %v", i, order[:i+1])
		}
	}
}

func TestOrderedWithStep(t *testing.T) {
	key := "ordered-step"
	sp := sched.Space{Lo: 3, Hi: 30, Step: 3}
	var order []int
	var mu sync.Mutex
	Region(3, func(w *Worker) {
		fc := BeginFor(w, key, sp, sched.Dynamic, 1)
		defer fc.EndFor()
		for {
			sub, ok := fc.Dispense()
			if !ok {
				break
			}
			for i := sub.Lo; i < sub.Hi; i += sub.Step {
				fc.Ordered(i, func() {
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
				})
			}
		}
	})
	want := sp.Values()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNamedLockSharedAcrossIds(t *testing.T) {
	if NamedLock("a") != NamedLock("a") {
		t.Fatal("same id produced different locks")
	}
	if NamedLock("a") == NamedLock("b") {
		t.Fatal("different ids share a lock")
	}
}

func TestObjectLockPerObject(t *testing.T) {
	type obj struct{ _ int }
	a, b := &obj{}, &obj{}
	if ObjectLock(a) != ObjectLock(a) {
		t.Fatal("same object produced different locks")
	}
	if ObjectLock(a) == ObjectLock(b) {
		t.Fatal("different objects share a lock")
	}
}

func TestLockTableMutualExclusionPerKey(t *testing.T) {
	tbl := NewLockTable(8)
	counters := make([]int, 8) // unsynchronised: protected only by the table
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := i % 8
				tbl.Lock(k)
				counters[k]++
				tbl.Unlock(k)
			}
		}()
	}
	wg.Wait()
	for k, c := range counters {
		if c != 8*1000/8 {
			t.Fatalf("counter[%d] = %d, want 1000", k, c)
		}
	}
}

func TestLockTableNegativeKey(t *testing.T) {
	tbl := NewLockTable(4)
	tbl.Lock(-3) // must not panic
	tbl.Unlock(-3)
}

func TestTaskGroupWaitsForLateTasks(t *testing.T) {
	g := NewTaskGroup()
	var done atomic.Int32
	g.Add(1)
	go func() {
		// task that spawns another task before finishing
		g.Add(1)
		go func() {
			done.Add(1)
			g.Done()
		}()
		done.Add(1)
		g.Done()
	}()
	g.Wait()
	if done.Load() != 2 {
		t.Fatalf("Wait returned before tasks finished: %d", done.Load())
	}
	if g.Pending() != 0 {
		t.Fatalf("pending = %d", g.Pending())
	}
}

func TestSpawnInsideRegionJoinsAtRegionEnd(t *testing.T) {
	var done atomic.Int32
	Region(2, func(w *Worker) {
		Spawn(func() {
			// Task inherits the worker context of its spawner.
			if Current() == nil {
				t.Error("task lost worker context")
			}
			done.Add(1)
		})
	})
	if done.Load() != 2 {
		t.Fatalf("region exited before tasks completed: %d", done.Load())
	}
}

func TestFutureResolution(t *testing.T) {
	f := SpawnFuture(func() any { return 42 })
	if got := f.Get(); got != 42 {
		t.Fatalf("future = %v, want 42", got)
	}
	if !f.Resolved() {
		t.Fatal("future not resolved after Get")
	}
	globalTasks.Wait()
}

func TestTLSInitialisedPerWorker(t *testing.T) {
	key := "tls-test"
	var inits atomic.Int32
	Region(4, func(w *Worker) {
		v1 := w.TLS(key, func() any { inits.Add(1); return w.ID * 100 })
		v2 := w.TLS(key, func() any { t.Error("factory re-ran"); return nil })
		if v1 != w.ID*100 || v2 != v1 {
			t.Errorf("worker %d: tls %v/%v", w.ID, v1, v2)
		}
		w.TLSDelete(key)
		if _, ok := w.TLSIfPresent(key); ok {
			t.Errorf("tls survived delete")
		}
	})
	if inits.Load() != 4 {
		t.Fatalf("factory ran %d times, want 4", inits.Load())
	}
}

// Property: a region always reduces correctly when each worker accumulates
// a static block and results are merged — the canonical data-parallel
// pattern every benchmark relies on.
func TestRegionBlockSumProperty(t *testing.T) {
	f := func(count uint16, nth uint8) bool {
		n := int(count % 5000)
		threads := int(nth%6) + 1
		data := make([]int64, n)
		var want int64
		for i := range data {
			data[i] = int64(i*i%97 - 31)
			want += data[i]
		}
		var got atomic.Int64
		Region(threads, func(w *Worker) {
			sub := sched.Block(sched.Space{Lo: 0, Hi: n, Step: 1}, threads, w.ID)
			var local int64
			for i := sub.Lo; i < sub.Hi; i += sub.Step {
				local += data[i]
			}
			got.Add(local)
		})
		return got.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceCleanup(t *testing.T) {
	var team *Team
	Region(3, func(w *Worker) {
		if w.ID == 0 {
			team = w.Team
		}
		for e := 0; e < 50; e++ {
			fc := BeginFor(w, "cleanup", sched.Space{Lo: 0, Hi: 9, Step: 1}, sched.Dynamic, 1)
			for {
				if _, ok := fc.Dispense(); !ok {
					break
				}
			}
			fc.EndFor()
		}
	})
	if p := team.pendingInstances(); p != 0 {
		t.Fatalf("%d construct instances leaked", p)
	}
}

func BenchmarkRegionEntry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Region(2, func(w *Worker) {})
	}
}

func BenchmarkBarrier(b *testing.B) {
	Region(2, func(w *Worker) {
		for i := 0; i < b.N; i++ {
			w.Team.Barrier().Wait()
		}
	})
}
