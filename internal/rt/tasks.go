package rt

import "sync"

// TaskGroup tracks asynchronous activities spawned by the @Task and
// @FutureTask constructs. Unlike sync.WaitGroup it tolerates Add after a
// concurrent Wait has begun (new tasks simply extend the wait), which is
// the semantics @TaskWait needs when tasks spawn tasks.
//
// Runtime v2: inside a parallel region, spawned tasks are not goroutines —
// they are queued on the spawning worker's deque and executed at task
// scheduling points (TaskWait, Future.Get, TaskYield, region end) by
// whichever team worker reaches them first, with idle workers stealing
// from busy ones. events counts queue activity so helping waiters never
// sleep through a freshly pushed task.
type TaskGroup struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending int
	events  uint64
}

// NewTaskGroup returns an empty group.
func NewTaskGroup() *TaskGroup {
	g := &TaskGroup{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Add registers n new pending tasks.
func (g *TaskGroup) Add(n int) {
	g.mu.Lock()
	g.pending += n
	g.mu.Unlock()
}

// notify records queue activity and wakes waiters so they can (re)try to
// claim queued work. Called after a task becomes visible in a deque.
func (g *TaskGroup) notify() {
	g.mu.Lock()
	g.events++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Done marks one task complete.
func (g *TaskGroup) Done() {
	g.mu.Lock()
	g.pending--
	if g.pending < 0 {
		g.mu.Unlock()
		panic("rt: TaskGroup counter went negative")
	}
	if g.pending == 0 {
		g.events++
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Wait blocks until no tasks are pending — the join point between the
// spawning and the spawned activities (@TaskWait). It does not execute
// queued tasks itself; workers inside a region should use the package
// function TaskWait, which helps drain the queues while waiting.
func (g *TaskGroup) Wait() {
	g.mu.Lock()
	for g.pending > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// helpWait drains tasks until none are pending, executing queued work on w
// instead of sleeping whenever any is visible. This is both the @TaskWait
// implementation for workers and the implicit join at region end.
func (g *TaskGroup) helpWait(w *Worker) {
	g.mu.Lock()
	for g.pending > 0 {
		v := g.events
		g.mu.Unlock()
		if t := w.findTask(); t != nil {
			t.run()
			g.mu.Lock()
			continue
		}
		g.mu.Lock()
		// Sleep only if nothing was queued or completed since the failed
		// claim above — otherwise retry immediately (a task published
		// between findTask and re-lock would be lost to a sleeper).
		if g.pending > 0 && g.events == v {
			g.cond.Wait()
		}
	}
	g.mu.Unlock()
}

// Pending reports the number of outstanding tasks (diagnostics/tests).
func (g *TaskGroup) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pending
}

// globalTasks serves @Task used outside any parallel region ("This
// construct can also be used outside the parallel region").
var globalTasks = NewTaskGroup()

// TaskScope returns the task group governing the caller: the team group
// inside a region, the process-wide group outside.
func TaskScope() *TaskGroup {
	if w := Current(); w != nil {
		return w.Team.Tasks()
	}
	return globalTasks
}

// TaskWait joins all outstanding tasks of the caller's scope (@TaskWait).
// Inside a region the caller executes queued tasks while waiting (helping,
// so the join cannot starve); outside it simply blocks on the global group.
func TaskWait() {
	if w := Current(); w != nil {
		if g := w.Team.tasksIfAny(); g != nil {
			g.helpWait(w)
		}
		return
	}
	globalTasks.Wait()
}

// TaskYield is an explicit task scheduling point: the calling worker
// executes up to n queued tasks of its team (its own first, then stolen).
// It reports how many ran. Outside a parallel region it is a no-op — tasks
// spawned there run on their own goroutines already.
func TaskYield(n int) int {
	w := Current()
	if w == nil {
		return 0
	}
	ran := 0
	for ran < n {
		t := w.findTask()
		if t == nil {
			break
		}
		if t.run() {
			ran++
		}
	}
	return ran
}

// Spawn runs body asynchronously under the caller's task scope (@Task).
//
// Inside a parallel region the task is deferred: it is queued on the
// calling worker's deque and executed at the next task scheduling point by
// a team worker — possibly a different one than the spawner, exactly as an
// OpenMP task may be executed by any thread of the team. The task observes
// the worker context of its executor. Outside any region (or once the
// spawning team has completed) the task runs on its own goroutine under
// the global scope.
func Spawn(body func()) {
	if w := Current(); w != nil && !w.Team.completed.Load() {
		g := w.Team.Tasks()
		g.Add(1)
		t := &task{fn: body, group: g}
		w.deque.push(t)
		g.notify()
		// The team may have completed (and drained) between the check
		// above and the push; reclaim the task and run it asynchronously
		// so it cannot be stranded on a dead team's deque.
		if w.Team.completed.Load() && t.claim() {
			go t.exec()
		}
		return
	}
	globalTasks.Add(1)
	go func() {
		defer globalTasks.Done()
		body()
	}()
}

// Future is the synchronisation object behind @FutureTask/@FutureResult:
// the getter of the returned object blocks until the asynchronous method
// has produced its value.
type Future struct {
	done chan struct{}
	val  any
	task *task // the deferred producer, when team-queued; claimable by Get
}

// NewFuture returns an unresolved future.
func NewFuture() *Future { return &Future{done: make(chan struct{})} }

// ResolvedFuture returns a future already holding v; its getter never
// blocks. It backs the sequential semantics of @FutureTask methods whose
// aspect is unplugged.
func ResolvedFuture(v any) *Future {
	f := NewFuture()
	f.val = v
	close(f.done)
	return f
}

// SpawnFuture runs fn asynchronously under the caller's task scope and
// returns a Future resolved with its result. Inside a region the task is
// deferred to the team's deques like Spawn; the future's getter is a
// scheduling point, so a worker that demands the value executes queued
// tasks (including, typically, this one) instead of deadlocking on it.
func SpawnFuture(fn func() any) *Future {
	f := NewFuture()
	resolve := func() {
		f.val = fn()
		close(f.done)
	}
	if w := Current(); w != nil && !w.Team.completed.Load() {
		g := w.Team.Tasks()
		g.Add(1)
		t := &task{fn: resolve, group: g}
		f.task = t
		w.deque.push(t)
		g.notify()
		if w.Team.completed.Load() && t.claim() {
			go t.exec()
		}
		return f
	}
	globalTasks.Add(1)
	go func() {
		defer globalTasks.Done()
		resolve()
	}()
	return f
}

// Get blocks until the future resolves and returns its value
// (@FutureResult: getters "act as synchronisation points"). A worker
// calling Get helps execute queued team tasks while the value is not yet
// available; if the producing task is still queued — possibly on an
// enclosing team, unreachable from a nested region's deques — Get claims
// and executes it directly, so demanding a future can never deadlock on
// its own deferred producer.
func (f *Future) Get() any {
	if !f.Resolved() {
		if w := Current(); w != nil {
			f.help(w)
		}
		if f.task != nil && f.task.run() {
			// Executed here: f.done is closed now.
		}
		<-f.done
	}
	return f.val
}

// help runs queued tasks on w until the future resolves or no queued work
// is visible (in which case the task is in flight on another worker and
// blocking on the channel is safe).
func (f *Future) help(w *Worker) {
	for {
		select {
		case <-f.done:
			return
		default:
		}
		t := w.findTask()
		if t == nil {
			return
		}
		t.run()
	}
}

// Resolved reports whether the value is available without blocking.
func (f *Future) Resolved() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// RWLock is the readers/writer mechanism (@Reader/@Writer): multiple
// readers, one exclusive writer. It is a thin name over sync.RWMutex kept
// as a distinct type so aspects can register and report it.
type RWLock struct{ sync.RWMutex }
