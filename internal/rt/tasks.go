package rt

import "sync"

// TaskGroup tracks asynchronous activities spawned by the @Task and
// @FutureTask constructs. Unlike sync.WaitGroup it tolerates Add after a
// concurrent Wait has begun (new tasks simply extend the wait), which is
// the semantics @TaskWait needs when tasks spawn tasks.
type TaskGroup struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending int
}

// NewTaskGroup returns an empty group.
func NewTaskGroup() *TaskGroup {
	g := &TaskGroup{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Add registers n new pending tasks.
func (g *TaskGroup) Add(n int) {
	g.mu.Lock()
	g.pending += n
	g.mu.Unlock()
}

// Done marks one task complete.
func (g *TaskGroup) Done() {
	g.mu.Lock()
	g.pending--
	if g.pending < 0 {
		g.mu.Unlock()
		panic("rt: TaskGroup counter went negative")
	}
	if g.pending == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Wait blocks until no tasks are pending — the join point between the
// spawning and the spawned activities (@TaskWait).
func (g *TaskGroup) Wait() {
	g.mu.Lock()
	for g.pending > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Pending reports the number of outstanding tasks (diagnostics/tests).
func (g *TaskGroup) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pending
}

// globalTasks serves @Task used outside any parallel region ("This
// construct can also be used outside the parallel region").
var globalTasks = NewTaskGroup()

// TaskScope returns the task group governing the caller: the team group
// inside a region, the process-wide group outside.
func TaskScope() *TaskGroup {
	if w := Current(); w != nil {
		return w.Team.Tasks()
	}
	return globalTasks
}

// Spawn runs body asynchronously under the caller's task scope. If the
// caller is a worker, the spawned goroutine inherits its worker context so
// the task executes within the region's dynamic extent (it observes the
// same team, thread id and thread-local state as its spawner, which
// mirrors an untied OpenMP task executed by its creating thread).
func Spawn(body func()) {
	g := TaskScope()
	g.Add(1)
	parent := Current()
	go func() {
		defer g.Done()
		if parent != nil {
			glsContexts.Add(1)
			current.Push(parent)
			defer func() {
				current.Pop()
				glsContexts.Add(-1)
			}()
		}
		body()
	}()
}

// Future is the synchronisation object behind @FutureTask/@FutureResult:
// the getter of the returned object blocks until the asynchronous method
// has produced its value.
type Future struct {
	done chan struct{}
	val  any
}

// NewFuture returns an unresolved future.
func NewFuture() *Future { return &Future{done: make(chan struct{})} }

// ResolvedFuture returns a future already holding v; its getter never
// blocks. It backs the sequential semantics of @FutureTask methods whose
// aspect is unplugged.
func ResolvedFuture(v any) *Future {
	f := NewFuture()
	f.val = v
	close(f.done)
	return f
}

// SpawnFuture runs fn asynchronously under the caller's task scope and
// returns a Future resolved with its result.
func SpawnFuture(fn func() any) *Future {
	f := NewFuture()
	g := TaskScope()
	g.Add(1)
	parent := Current()
	go func() {
		defer g.Done()
		if parent != nil {
			glsContexts.Add(1)
			current.Push(parent)
			defer func() {
				current.Pop()
				glsContexts.Add(-1)
			}()
		}
		f.val = fn()
		close(f.done)
	}()
	return f
}

// Get blocks until the future resolves and returns its value
// (@FutureResult: getters "act as synchronisation points").
func (f *Future) Get() any {
	<-f.done
	return f.val
}

// Resolved reports whether the value is available without blocking.
func (f *Future) Resolved() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// RWLock is the readers/writer mechanism (@Reader/@Writer): multiple
// readers, one exclusive writer. It is a thin name over sync.RWMutex kept
// as a distinct type so aspects can register and report it.
type RWLock struct{ sync.RWMutex }
