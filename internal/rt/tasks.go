package rt

import (
	"sync"

	"aomplib/internal/obs"
)

// TaskGroup tracks asynchronous activities spawned by the @Task and
// @FutureTask constructs. Unlike sync.WaitGroup it tolerates Add after a
// concurrent Wait has begun (new tasks simply extend the wait), which is
// the semantics @TaskWait needs when tasks spawn tasks.
//
// Runtime v2: inside a parallel region, spawned tasks are not goroutines —
// they are queued on the spawning worker's deque and executed at task
// scheduling points (TaskWait, Future.Get, TaskYield, region end) by
// whichever team worker reaches them first, with idle workers stealing
// from busy ones. Tasks with unsatisfied dependence clauses (@Depend) park
// in the team's dependence tracker and enter a deque only when released
// (depend.go). events counts queue activity so helping waiters never sleep
// through a freshly pushed task.
type TaskGroup struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  int
	events   uint64
	awaiters int // Future.Get waiters parked in awaitEvent

	// parent chains a @TaskGroup scope to its enclosing scope and,
	// ultimately, the team group: every Add/Done/notify propagates up, so
	// scope tasks keep the team group pending and idle teammates — parked
	// in the region-end join on the team group — wake up and steal them.
	// Without the chain a scope's tasks would be invisible to the team
	// join and execute only on the scoping worker.
	parent *TaskGroup
}

// NewTaskGroup returns an empty group.
func NewTaskGroup() *TaskGroup {
	g := &TaskGroup{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// newScopedGroup returns an empty group chained to parent.
func newScopedGroup(parent *TaskGroup) *TaskGroup {
	g := NewTaskGroup()
	g.parent = parent
	return g
}

// Add registers n new pending tasks, here and in every enclosing group.
func (g *TaskGroup) Add(n int) {
	for p := g; p != nil; p = p.parent {
		p.mu.Lock()
		p.pending += n
		p.mu.Unlock()
	}
}

// notify records queue activity and wakes waiters — up the whole chain, so
// team-group waiters see scope-task pushes — letting them (re)try to claim
// queued work. Called after a task becomes visible in a deque.
func (g *TaskGroup) notify() {
	for p := g; p != nil; p = p.parent {
		p.mu.Lock()
		p.events++
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// Done marks one task complete, here and in every enclosing group. Waiters
// are woken when a group drains or when a Future.Get is parked on it (its
// producer may just have resolved even though unrelated tasks are still
// pending).
func (g *TaskGroup) Done() {
	for p := g; p != nil; p = p.parent {
		p.doneOne()
	}
}

func (g *TaskGroup) doneOne() {
	g.mu.Lock()
	g.pending--
	if g.pending < 0 {
		g.mu.Unlock()
		panic("rt: TaskGroup counter went negative")
	}
	if g.pending == 0 || g.awaiters > 0 {
		g.events++
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Wait blocks until no tasks are pending — the join point between the
// spawning and the spawned activities (@TaskWait). It does not execute
// queued tasks itself; workers inside a region should use the package
// function TaskWait, which helps drain the queues while waiting.
func (g *TaskGroup) Wait() {
	g.mu.Lock()
	for g.pending > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// helpWait drains tasks until none are pending, executing queued work on w
// instead of sleeping whenever any is visible. This is both the @TaskWait
// implementation for workers and the implicit join at region end. Parked
// dependent tasks are invisible until released; the release pushes them to
// a deque and bumps events, so the waiter wakes and claims them.
func (g *TaskGroup) helpWait(w *Worker) {
	g.mu.Lock()
	for g.pending > 0 {
		v := g.events
		g.mu.Unlock()
		if t := w.findTask(); t != nil {
			w.runTask(t)
			t.decRef()
			g.mu.Lock()
			continue
		}
		g.mu.Lock()
		// Sleep only if nothing was queued or completed since the failed
		// claim above — otherwise retry immediately (a task published
		// between findTask and re-lock would be lost to a sleeper).
		if g.pending > 0 && g.events == v {
			g.cond.Wait()
		}
	}
	g.mu.Unlock()
}

// eventStamp snapshots the activity counter for a later awaitEvent.
func (g *TaskGroup) eventStamp() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.events
}

// awaitEvent blocks until queue activity after stamp v, the group drains,
// or stop reports true. The awaiters count makes every Done broadcast
// while a getter is parked here, so a producer resolving amid unrelated
// pending tasks cannot be slept through.
func (g *TaskGroup) awaitEvent(v uint64, stop func() bool) {
	g.mu.Lock()
	g.awaiters++
	for g.events == v && g.pending > 0 && !stop() {
		g.cond.Wait()
	}
	g.awaiters--
	g.mu.Unlock()
}

// Pending reports the number of outstanding tasks (diagnostics/tests).
func (g *TaskGroup) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pending
}

// globalTasks serves @Task used outside any parallel region ("This
// construct can also be used outside the parallel region").
var globalTasks = NewTaskGroup()

// taskPool recycles task objects so steady-state spawning inside regions
// allocates nothing (the dependence nodes of @Depend are recycled on the
// tracker's own free lists for the same reason). Tasks backing a Future
// are excluded: the future retains its task pointer indefinitely.
var taskPool = sync.Pool{New: func() any { return new(task) }}

// newTask draws a pooled task carrying two references: the queue (deque or
// dependence tracker) slot and the spawner's temporary hold.
func newTask(fn func(), g *TaskGroup, w *Worker) *task {
	t := taskPool.Get().(*task)
	t.fn, t.group, t.spawner = fn, g, w
	t.pooled = true
	t.refs.Store(2)
	t.state.Store(taskReady)
	return t
}

// spawnGroup returns the group new tasks of this worker join: the
// innermost @TaskGroup scope when one is active, the team group otherwise.
func (w *Worker) spawnGroup() *TaskGroup {
	if g := w.curGroup.Load(); g != nil {
		return g
	}
	return w.Team.Tasks()
}

// TaskScope returns the task group governing the caller: the innermost
// @TaskGroup scope or team group inside a region, the process-wide group
// outside.
func TaskScope() *TaskGroup {
	if w := Current(); w != nil {
		return w.spawnGroup()
	}
	return globalTasks
}

// TaskWait joins all outstanding tasks of the caller's scope (@TaskWait).
// Inside a region the caller executes queued tasks while waiting (helping,
// so the join cannot starve); outside it simply blocks on the global group.
func TaskWait() {
	if w := Current(); w != nil {
		if g := w.curGroup.Load(); g != nil {
			g.helpWait(w)
			return
		}
		if g := w.Team.tasksIfAny(); g != nil {
			g.helpWait(w)
		}
		return
	}
	globalTasks.Wait()
}

// TaskYield is an explicit task scheduling point: the calling worker
// executes up to n queued tasks of its team (its own first, then stolen).
// It reports how many ran. Outside a parallel region it is a no-op — tasks
// spawned there run on their own goroutines already.
func TaskYield(n int) int {
	w := Current()
	if w == nil {
		return 0
	}
	ran := 0
	for ran < n {
		t := w.findTask()
		if t == nil {
			break
		}
		if w.runTask(t) {
			ran++
		}
		t.decRef()
	}
	return ran
}

// Spawn runs body asynchronously under the caller's task scope (@Task).
//
// Inside a parallel region the task is deferred: it is queued on the
// calling worker's deque and executed at the next task scheduling point by
// a team worker — possibly a different one than the spawner, exactly as an
// OpenMP task may be executed by any thread of the team. The task observes
// the worker context of its executor. Outside any region (or once the
// spawning team has completed) the task runs on its own goroutine under
// the global scope.
func Spawn(body func()) {
	if w := Current(); w != nil && !w.Team.completed.Load() {
		g := w.spawnGroup()
		g.Add(1)
		t := newTask(body, g, w)
		if h := obsHooks(); h != nil {
			stampTask(h, t, w, obs.TaskDeferred)
		}
		w.deque.push(t)
		g.notify()
		// The team may have completed (and drained) between the check
		// above and the push; reclaim the task and run it asynchronously
		// so it cannot be stranded on a dead team's deque. The spawner's
		// reference transfers to the rescue goroutine.
		if w.Team.completed.Load() && t.claim() {
			go func() {
				t.exec()
				t.decRef()
			}()
			return
		}
		t.decRef()
		return
	}
	emitInlineTask(obsHooks())
	globalTasks.Add(1)
	go func() {
		defer globalTasks.Done()
		body()
	}()
}

// Future is the synchronisation object behind @FutureTask/@FutureResult:
// the getter of the returned object blocks until the asynchronous method
// has produced its value.
type Future struct {
	done chan struct{}
	val  any
	task *task // the deferred producer, when team-queued; claimable by Get
}

// NewFuture returns an unresolved future.
func NewFuture() *Future { return &Future{done: make(chan struct{})} }

// ResolvedFuture returns a future already holding v; its getter never
// blocks. It backs the sequential semantics of @FutureTask methods whose
// aspect is unplugged.
func ResolvedFuture(v any) *Future {
	f := NewFuture()
	f.val = v
	close(f.done)
	return f
}

// SpawnFuture runs fn asynchronously under the caller's task scope and
// returns a Future resolved with its result. Inside a region the task is
// deferred to the team's deques like Spawn; the future's getter is a
// scheduling point, so a worker that demands the value executes queued
// tasks (including, typically, this one) instead of deadlocking on it.
func SpawnFuture(fn func() any) *Future {
	f := NewFuture()
	resolve := func() {
		f.val = fn()
		close(f.done)
	}
	if w := Current(); w != nil && !w.Team.completed.Load() {
		g := w.spawnGroup()
		g.Add(1)
		t := &task{fn: resolve, group: g, spawner: w} // retained by f: never pooled
		t.refs.Store(2)
		f.task = t
		if h := obsHooks(); h != nil {
			stampTask(h, t, w, obs.TaskFuture)
		}
		w.deque.push(t)
		g.notify()
		if w.Team.completed.Load() && t.claim() {
			go t.exec()
		}
		return f
	}
	emitInlineTask(obsHooks())
	globalTasks.Add(1)
	go func() {
		defer globalTasks.Done()
		resolve()
	}()
	return f
}

// Get blocks until the future resolves and returns its value
// (@FutureResult: getters "act as synchronisation points"). A worker
// calling Get helps execute queued team tasks while the value is not yet
// available; if the producing task is queued and claimable — possibly on
// an enclosing team, unreachable from a nested region's deques — Get
// claims and executes it directly. A producer parked behind unsatisfied
// dependence clauses is not claimable; the getter then drains the
// producer's own team (running, transitively, the predecessors) and, when
// nothing is visible anywhere, parks until queue activity. Demanding a
// future therefore never deadlocks on its own deferred producer.
func (f *Future) Get() any {
	if f.Resolved() {
		return f.val
	}
	w := Current()
	for {
		if w != nil {
			f.help(w)
		}
		if f.Resolved() {
			break
		}
		t := f.task
		if t == nil {
			<-f.done
			break
		}
		v := t.group.eventStamp()
		var ran bool
		if w != nil {
			ran = w.runTask(t)
		} else {
			ran = t.run()
		}
		if ran || f.Resolved() {
			break
		}
		if w == nil {
			// Not a team worker: claiming the producer itself (above) is
			// the only execution this goroutine may take on — running
			// arbitrary team tasks here would strip them of their team
			// context, letting their sub-spawns escape the region-end
			// join. The team's own workers make progress; just block.
			<-f.done
			break
		}
		// Help the producer's team directly: its predecessors live on that
		// team's deques, which w.findTask cannot see from a nested team.
		if s := t.spawner; s != nil {
			if st := stealAnyTask(s.Team); st != nil {
				w.runTask(st)
				st.decRef()
				continue
			}
		}
		// Producer parked or in flight elsewhere and no queued work is
		// visible: wait for queue activity or resolution, then retry.
		t.group.awaitEvent(v, f.Resolved)
	}
	return f.val
}

// stealAnyTask pops a queued task from any deque of the given team, or nil.
func stealAnyTask(team *Team) *task {
	for _, v := range team.workers {
		if t := v.deque.stealTop(); t != nil {
			return t
		}
	}
	return nil
}

// help runs queued tasks on w until the future resolves or no queued work
// is visible (in which case the producer is in flight, parked behind
// dependences, or on another team — Get handles those cases).
func (f *Future) help(w *Worker) {
	for {
		select {
		case <-f.done:
			return
		default:
		}
		t := w.findTask()
		if t == nil {
			return
		}
		w.runTask(t)
		t.decRef()
	}
}

// Resolved reports whether the value is available without blocking.
func (f *Future) Resolved() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// RWLock is the readers/writer mechanism (@Reader/@Writer): multiple
// readers, one exclusive writer. It is a thin name over sync.RWMutex kept
// as a distinct type so aspects can register and report it.
type RWLock struct{ sync.RWMutex }
