package rt

import (
	"sync"

	"aomplib/internal/sched"
)

// This file holds the runtime hooks behind the generic algorithms layer
// (package aomplib/parallel): a loop runner that executes one worker's
// share of an iteration space under any schedule, a splittable-range task
// spawner for composable nested parallelism, and a token pool for bounded
// streaming pipelines. All three reuse the existing machinery — deques,
// steal schedule, hot teams, obs hooks — rather than introducing a second
// scheduler.

// SpanFunc executes one dispensed sub-range of a loop. The arg parameter
// threads caller state through without a per-call closure, mirroring
// RegionArg: ForSpan callers pass a long-lived function and a pooled
// argument so steady-state generic loops allocate nothing.
type SpanFunc func(sub sched.Space, arg any)

// ForSpan executes worker w's share of sp under kind, invoking run for
// each sub-range the schedule assigns to w. kind must be concrete or
// Adaptive (the caller resolves Auto/Runtime once, before the region, so
// one loop can never split across two schedules; Adaptive resolves inside
// the team-shared encounter state, uniformly for the whole team, from the
// previous encounter's measurement). Static kinds are served from pure
// arithmetic — no shared state, no allocation — which is what keeps the
// parallel.For dispatch gate at 0 allocs/op; dynamic, guided, steal,
// weightedSteal and adaptive route through the team-shared dispenser
// state of BeginFor, exactly like the woven @For construct, so they
// inherit chunk batching, range stealing, speed-estimate training and the
// obs work/steal events for free.
//
// Every worker of the team must call ForSpan for the same loop (the
// standing work-sharing encounter contract). key identifies the loop's
// encounter for the dispenser-backed kinds; callers pass a pointer shared
// by the whole team (typically the region argument). For Adaptive the key
// must additionally be stable across encounters — it names the state the
// loop learns in.
//
// ForSpan performs no end-of-loop barrier: generic-layer loops are each
// their own region, whose join is the barrier. Callers sharing one region
// across phases (e.g. a two-pass scan) insert team barriers themselves.
func ForSpan(w *Worker, sp sched.Space, kind sched.Kind, key any, chunk int, run SpanFunc, arg any) {
	if kind == sched.StaticBlock || kind == sched.StaticCyclic {
		if h := obsHooks(); h != nil {
			if h.WorkBegin != nil {
				h.WorkBegin(w.gid, w.Team.tid, uint8(kind))
			}
			if h.WorkEnd != nil {
				defer h.WorkEnd(w.gid, w.Team.tid)
			}
		}
		runStaticSpan(w, sp, kind, run, arg)
		return
	}
	fc := BeginFor(w, key, sp, kind, chunk)
	switch fc.Kind {
	case sched.StaticBlock, sched.StaticCyclic:
		// An adaptive encounter resolved static this round.
		runStaticSpan(w, sp, fc.Kind, run, arg)
	case sched.Steal, sched.WeightedSteal:
		for {
			sub, ok := fc.DispenseSteal()
			if !ok {
				break
			}
			AsymDelay(w.ID, sub.Count())
			run(sub, arg)
		}
	default: // Dynamic, Guided
		for {
			sub, ok := fc.Dispense()
			if !ok {
				break
			}
			AsymDelay(w.ID, sub.Count())
			run(sub, arg)
		}
	}
	fc.EndFor()
}

// runStaticSpan executes w's arithmetically derived static share of sp.
func runStaticSpan(w *Worker, sp sched.Space, kind sched.Kind, run SpanFunc, arg any) {
	var sub sched.Space
	if kind == sched.StaticBlock {
		sub = sched.Block(sp, w.Team.Size, w.ID)
	} else {
		sub = sched.Cyclic(sp, w.Team.Size, w.ID)
	}
	if sub.Count() > 0 {
		AsymDelay(w.ID, sub.Count())
		run(sub, arg)
	}
}

// SpawnRange decomposes sp into deferred, stealable tasks of at most grain
// iterations each, executing run on every piece exactly once. The split is
// recursive-binary: each task halves its range, spawns the right half on
// the caller's deque (claimable by idle siblings) and keeps the left, so
// an idle team balances a skewed range in O(log n) steals instead of one
// task per chunk up front. It is the composable-nesting primitive of the
// generic algorithms layer: a parallel.For encountered inside an existing
// region decomposes onto the current team's deques instead of paying a
// nested region entry.
//
// The caller owns the join: SpawnRange only spawns (tasks land in the
// caller's task scope) and runs the leftmost piece inline. Wrap it in
// TaskGroupScope, or rely on TaskWait/region end, to wait for completion.
func SpawnRange(sp sched.Space, grain int, run func(sub sched.Space)) {
	if grain < 1 {
		grain = 1
	}
	spawnRangeSplit(sp, grain, run)
}

func spawnRangeSplit(sp sched.Space, grain int, run func(sub sched.Space)) {
	for sp.Count() > grain {
		n := sp.Count()
		right := sp.Slice(n/2, n)
		sp = sp.Slice(0, n/2)
		Spawn(func() { spawnRangeSplit(right, grain, run) })
	}
	if sp.Count() > 0 {
		run(sp)
	}
}

// TokenPool is a counting semaphore whose Acquire is a task scheduling
// point: a worker that finds no token executes queued team tasks instead
// of sleeping, and parks on its task group's event channel only when
// nothing is claimable anywhere. It is the token accounting behind
// parallel.Pipeline — the bound on in-flight items — where blocking the
// ingesting worker outright would deadlock a one-worker team whose queued
// stage tasks are the only source of releases.
//
// Releases are expected to happen from inside team tasks (a task
// completion broadcasts the group event a parked Acquire waits on); a
// Release from a plain goroutine wakes only non-worker waiters. Acquire
// must be called from the goroutine that also spawns the work the tokens
// gate, so that an empty task scope implies no pending release.
type TokenPool struct {
	mu   sync.Mutex
	cond *sync.Cond
	free int
}

// NewTokenPool returns a pool holding n tokens (n < 1 is treated as 1).
func NewTokenPool(n int) *TokenPool {
	if n < 1 {
		n = 1
	}
	p := &TokenPool{free: n}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// TryAcquire takes a token without blocking, reporting success.
func (p *TokenPool) TryAcquire() bool {
	p.mu.Lock()
	ok := p.free > 0
	if ok {
		p.free--
	}
	p.mu.Unlock()
	return ok
}

// hasFree reports whether a token is available, for use as an awaitEvent
// stop condition.
func (p *TokenPool) hasFree() bool {
	p.mu.Lock()
	ok := p.free > 0
	p.mu.Unlock()
	return ok
}

// Acquire takes a token, helping execute queued team tasks while none is
// free. Outside any parallel region it simply blocks until Release.
func (p *TokenPool) Acquire() {
	w := Current()
	if w == nil {
		p.acquireSlow()
		return
	}
	for {
		if p.TryAcquire() {
			return
		}
		if t := w.findTask(); t != nil {
			w.runTask(t)
			t.decRef()
			continue
		}
		g := w.spawnGroup()
		v := g.eventStamp()
		if p.TryAcquire() {
			return
		}
		if g.Pending() == 0 {
			// No task can release a token; any release must come from a
			// plain goroutine, which only signals the pool condvar.
			p.acquireSlow()
			return
		}
		g.awaitEvent(v, p.hasFree)
	}
}

// acquireSlow blocks on the pool condvar until a token is free.
func (p *TokenPool) acquireSlow() {
	p.mu.Lock()
	for p.free == 0 {
		p.cond.Wait()
	}
	p.free--
	p.mu.Unlock()
}

// Release returns a token and wakes blocked acquirers. Worker acquirers
// parked on their task group are woken by the releasing task's own
// completion broadcast.
func (p *TokenPool) Release() {
	p.mu.Lock()
	p.free++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Free reports the tokens currently available (diagnostics/tests).
func (p *TokenPool) Free() int {
	p.mu.Lock()
	n := p.free
	p.mu.Unlock()
	return n
}
