// Package rt is AOmpLib's runtime: it implements the paper's execution
// model (§III.A) — parallel regions executed by a team of workers, with
// the master participating as worker 0 and joining the team at region
// exit (paper Fig. 9) — and everything that has grown around it since.
//
// The subsystems, roughly in the order later PRs added them:
//
//   - Regions and hot teams. Region/RegionArg enter a parallel region on
//     a leased, pre-spawned worker team from a bounded pool, so warm
//     steady-state entry is allocation-free. Multi-tenant admission
//     control arbitrates the pool across concurrent clients (FIFO
//     fairness with per-tenant quotas and reject/timeout degradation).
//   - Tasks. Spawn/SpawnDep push closures onto per-worker Chase-Lev
//     deques; idle workers steal. SpawnDep orders tasks by declared
//     Deps (in/out/inout addresses) on the dependence tracker; task
//     groups and futures provide the joining constructs.
//   - Synchronisation. A tree barrier with adaptive spin-then-park,
//     per-construct instance tracking (repeated work-sharing or single
//     constructs inside one region stay matched across workers), and
//     sharded named/per-object critical-lock registries.
//   - Loop dispatch. ForSpan runs one worker's share of an iteration
//     space under any sched.Kind — pure arithmetic for the static
//     kinds, the shared chunk dispenser (with steal-based dispensing)
//     for dynamic/guided/steal. SpawnRange decomposes a range into
//     stealable tasks by recursive binary splitting. TokenPool is a
//     counting semaphore whose blocked workers help run tasks instead
//     of parking. These are the primitives the public parallel package
//     builds its algorithms on.
//   - Observability. Every interesting transition reports into the
//     internal/obs hook table; with no tool installed each emit point
//     is a single predicted branch.
package rt
