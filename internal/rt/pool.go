package rt

import (
	"sync"
	"sync/atomic"
)

// Hot teams: parallel regions lease long-lived teams from a process-wide
// pool instead of building one per entry. A leased team reuses its worker
// goroutines (parked on their wake channels between regions), deques,
// barrier, task group and dependence tracker after a cheap reset
// (Team.beginLease), so region-per-iteration programs — SOR, MolDyn, the
// paper's Fig. 13 LUFact — stop paying team construction thousands of
// times. The pool caches by exact team size; a miss cold-spawns a team
// that becomes poolable when its entry completes cleanly. Panicked or
// poisoned teams are retired — their goroutines released, the team
// dropped — never recycled.

// hotOff gates team reuse. The zero value means "enabled" (hot teams are
// the default), so the gate costs one atomic load per region entry.
var hotOff atomic.Bool

// SetHotTeams enables or disables hot-team reuse, returning the previous
// setting. Disabling drains the pool — cached teams are retired — and
// subsequent regions spawn and discard their teams, the pre-pool
// behaviour.
func SetHotTeams(on bool) bool {
	prev := !hotOff.Swap(!on)
	if !on {
		drainPool()
	}
	return prev
}

// HotTeamsEnabled reports whether parallel regions reuse pooled teams.
func HotTeamsEnabled() bool { return !hotOff.Load() }

var (
	poolMu sync.Mutex
	// poolIdle caches idle teams by exact size, LIFO so the most recently
	// parked (cache-warmest) team is leased first.
	poolIdle = map[int][]*Team{}
	// poolWorkers is the worker count parked in poolIdle (sum of cached
	// team sizes, masters included) — what the capacity bound limits.
	poolWorkers int
	// poolLimit is the idle-worker bound; 0 selects the default.
	poolLimit int
)

// Pool statistics. Monotonic counters are atomics because retire/evict
// events happen outside poolMu.
var (
	statLeases   atomic.Uint64
	statHits     atomic.Uint64
	statMisses   atomic.Uint64
	statDisabled atomic.Uint64
	statRetired  atomic.Uint64
	statEvicted  atomic.Uint64
	statRecycled atomic.Uint64
)

// PoolStats is a snapshot of the hot-team pool, for observability.
// Counters are cumulative since process start; Idle*/MaxIdleWorkers
// describe the instant of the call.
type PoolStats struct {
	Leases   uint64 // region entries
	Hits     uint64 // entries served by a cached team
	Misses   uint64 // entries that cold-spawned with hot teams enabled
	Disabled uint64 // entries that cold-spawned because hot teams were off
	Recycled uint64 // clean entries that returned their team to the pool
	Retired  uint64 // teams destroyed after a panic or a dead worker
	Evicted  uint64 // healthy teams dropped: pool full, shrunk, or disabled

	IdleTeams      int // teams parked in the pool right now
	IdleWorkers    int // workers parked in the pool right now
	MaxIdleWorkers int // current idle-worker capacity bound
}

// ReadPoolStats snapshots the pool.
func ReadPoolStats() PoolStats {
	st := PoolStats{
		Leases:   statLeases.Load(),
		Hits:     statHits.Load(),
		Misses:   statMisses.Load(),
		Disabled: statDisabled.Load(),
		Recycled: statRecycled.Load(),
		Retired:  statRetired.Load(),
		Evicted:  statEvicted.Load(),
	}
	poolMu.Lock()
	for _, ts := range poolIdle {
		st.IdleTeams += len(ts)
	}
	st.IdleWorkers = poolWorkers
	st.MaxIdleWorkers = poolCapacityLocked()
	poolMu.Unlock()
	return st
}

// poolCapacityLocked resolves the idle-worker bound: the explicit
// SetPoolSize value, or four default-sized teams' worth — enough for a
// top-level team plus a few nested ones without hoarding goroutines.
func poolCapacityLocked() int {
	if poolLimit > 0 {
		return poolLimit
	}
	return 4 * DefaultThreads()
}

// SetPoolSize bounds how many workers the pool may keep parked (the sum
// of cached team sizes); 0 restores the default of four times the default
// team size. The bound limits hoarding across sizes — the one size in
// active use still keeps a single pooled team even above it (releaseTeam).
// It returns the previous explicit bound (0 if the default was in force)
// and immediately evicts cached teams that no longer fit.
func SetPoolSize(maxIdleWorkers int) int {
	if maxIdleWorkers < 0 {
		maxIdleWorkers = 0
	}
	poolMu.Lock()
	prev := poolLimit
	poolLimit = maxIdleWorkers
	evicted := evictOverLocked()
	poolMu.Unlock()
	for _, t := range evicted {
		statEvicted.Add(1)
		t.destroy()
	}
	return prev
}

// popSizeLocked removes and returns the most recently parked team of the
// given size, or nil. Called with poolMu held; all bucket bookkeeping
// (tail nil-out, poolWorkers accounting) lives here. An emptied bucket
// keeps its zero-length slice header in the map on purpose: the retained
// backing array is what lets the steady-state park in releaseTeam append
// without allocating — deleting the bucket would cost one alloc per warm
// region entry and break the 0 allocs/op gate.
func popSizeLocked(size int) *Team {
	ts := poolIdle[size]
	if len(ts) == 0 {
		return nil
	}
	t := ts[len(ts)-1]
	ts[len(ts)-1] = nil
	poolIdle[size] = ts[:len(ts)-1]
	poolWorkers -= size
	return t
}

// popAnyLocked removes and returns one parked team from any size bucket,
// or nil when the pool is empty. Called with poolMu held. Used where
// victim order does not matter (full drains, shrinks).
func popAnyLocked() *Team {
	for size := range poolIdle {
		if t := popSizeLocked(size); t != nil {
			return t
		}
	}
	return nil
}

// popFrontLocked removes and returns the *oldest* parked team of the
// given size (acquire takes the warm LIFO tail, so the bucket front is
// the stalest inventory), or nil. The shift keeps the backing array, so
// steady-state parking stays allocation-free. Called with poolMu held.
func popFrontLocked(size int) *Team {
	ts := poolIdle[size]
	if len(ts) == 0 {
		return nil
	}
	t := ts[0]
	copy(ts, ts[1:])
	ts[len(ts)-1] = nil
	poolIdle[size] = ts[:len(ts)-1]
	poolWorkers -= size
	return t
}

// popVictimLocked picks the best eviction victim when parking a team of
// size keep: the oldest parked team of any *other* size first — that is
// the stale inventory — and only then the oldest of keep's own bucket,
// so making room can never evict warmer same-size teams ahead of
// never-reused odd sizes. Called with poolMu held.
func popVictimLocked(keep int) *Team {
	for size := range poolIdle {
		if size == keep {
			continue
		}
		if t := popFrontLocked(size); t != nil {
			return t
		}
	}
	return popFrontLocked(keep)
}

// evictOverLocked pops cached teams until the pool fits its capacity,
// returning them for destruction outside the lock.
func evictOverLocked() []*Team {
	var out []*Team
	for poolWorkers > poolCapacityLocked() {
		t := popAnyLocked()
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// drainPool retires every cached team (SetHotTeams(false)).
func drainPool() {
	poolMu.Lock()
	var all []*Team
	for size, ts := range poolIdle {
		all = append(all, ts...)
		delete(poolIdle, size)
	}
	poolWorkers = 0
	poolMu.Unlock()
	for _, t := range all {
		statEvicted.Add(1)
		t.destroy()
	}
}

// acquireTeam leases a cached team of exactly n workers, or cold-spawns
// one. Leasing never blocks: when the cache has no team of the right size
// (pool exhausted, or nesting overflowed it), the entry pays the cold
// spawn — so nested leases cannot deadlock by construction.
func acquireTeam(n int) *Team {
	statLeases.Add(1)
	hit := false
	var t *Team
	if HotTeamsEnabled() {
		poolMu.Lock()
		t = popSizeLocked(n)
		poolMu.Unlock()
		if t != nil {
			statHits.Add(1)
			hit = true
		} else {
			statMisses.Add(1)
		}
	} else {
		statDisabled.Add(1)
	}
	if t == nil {
		t = newTeam(n)
	}
	if h := obsHooks(); h != nil && h.TeamLease != nil {
		h.TeamLease(curGID(), t.tid, n, hit)
	}
	return t
}

// bypassTeam cold-spawns a team that never touches the pool — the
// degraded path of admission control (admission.go). It is excluded from
// the pool's lease counters (it holds no lease; AdmissionStats.Degraded
// accounts for it) but still emits the TeamLease trace event so timelines
// stay coherent.
func bypassTeam(n int) *Team {
	t := newTeam(n)
	if h := obsHooks(); h != nil && h.TeamLease != nil {
		h.TeamLease(curGID(), t.tid, n, false)
	}
	return t
}

// releaseTeam parks a cleanly-finished team in the pool, or destroys it
// when hot teams are off or it cannot fit even after making room.
//
// The hot-teams flag is re-read under poolMu: SetHotTeams(false) swaps
// the flag before draining, so a concurrent release either observes the
// disabled flag here and destroys its team, or parks it before the
// drain's lock acquisition and the drain collects it — worker goroutines
// cannot leak into a disabled pool.
//
// When the pool is full, older parked teams are evicted to make room:
// the just-finished team is the warmest and its size is what the program
// is leasing right now, so dropping it in favour of stale inventory
// (e.g. a lone size-1 team parked by a 1-thread sweep starving every
// size-4 release) would disable reuse exactly where it pays. For the
// same reason a team larger than the configured bound still parks once
// the pool has been emptied for it — the bound limits hoarding across
// sizes, it must not silently disable reuse for the one size in active
// use; the pool may therefore transiently hold a single over-bound team.
func releaseTeam(t *Team) {
	var evicted []*Team
	parked := false
	poolMu.Lock()
	if HotTeamsEnabled() {
		for poolWorkers > 0 && poolWorkers+t.Size > poolCapacityLocked() {
			e := popVictimLocked(t.Size)
			if e == nil {
				break
			}
			evicted = append(evicted, e)
		}
		if poolWorkers == 0 || poolWorkers+t.Size <= poolCapacityLocked() {
			poolIdle[t.Size] = append(poolIdle[t.Size], t)
			poolWorkers += t.Size
			parked = true
		}
	}
	poolMu.Unlock()
	for _, e := range evicted {
		statEvicted.Add(1)
		e.destroy()
	}
	if parked {
		statRecycled.Add(1)
		return
	}
	statEvicted.Add(1)
	t.destroy()
}

// retireTeam destroys a team whose lease panicked or whose worker died —
// poisoned state must never be recycled.
func retireTeam(t *Team) {
	statRetired.Add(1)
	t.destroy()
}
