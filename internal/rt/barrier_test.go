package rt

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBarrierGenerationWraparound pins the overflow semantics of the
// generation counter: Wait returns the completing generation even as the
// uint64 wraps, and arrival accounting — which is modular, not tied to the
// generation value — keeps pairing phases across the wrap.
func TestBarrierGenerationWraparound(t *testing.T) {
	b := NewBarrier(1)
	b.gen.Store(math.MaxUint64)
	if g := b.Wait(); g != math.MaxUint64 {
		t.Fatalf("pre-wrap generation = %d, want MaxUint64", g)
	}
	if g := b.Wait(); g != 0 {
		t.Fatalf("post-wrap generation = %d, want 0", g)
	}
	if g := b.Wait(); g != 1 {
		t.Fatalf("second post-wrap generation = %d, want 1", g)
	}
}

// TestBarrierGenerationWraparoundMultiParty is the same wrap under real
// concurrency: every party of every phase must observe the same completing
// generation, across the wrap.
func TestBarrierGenerationWraparoundMultiParty(t *testing.T) {
	const n, phases = 4, 8
	b := NewBarrier(n)
	start := uint64(math.MaxUint64 - phases/2) // wrap mid-run
	b.gen.Store(start)
	gens := make([][phases]uint64, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				gens[id][p] = b.Wait()
			}
		}(id)
	}
	wg.Wait()
	for p := 0; p < phases; p++ {
		want := start + uint64(p) // wraps like the barrier does
		for id := 0; id < n; id++ {
			if gens[id][p] != want {
				t.Fatalf("party %d phase %d saw generation %d, want %d",
					id, p, gens[id][p], want)
			}
		}
	}
}

// TestBarrierParkPath forces every waiter through the spin-exhausted park
// path (spin bound clamps at the minimum, and the releaser is delayed by
// the sheer party count) and checks phase pairing survives it. Run with
// -race this doubles as the missed-wakeup check for the parked protocol.
func TestBarrierParkPath(t *testing.T) {
	const n, phases = 8, 50
	b := NewBarrier(n)
	b.spin.Store(1) // spin budget too small to ever catch a release
	var before [phases]atomic.Int32
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				before[p].Add(1)
				b.Wait()
				if got := before[p].Load(); got != n {
					t.Errorf("phase %d: %d arrivals visible after barrier", p, got)
				}
			}
		}()
	}
	wg.Wait()
}

// TestBarrierTreeRouting drives a barrier wide enough to have a real
// arrival tree (parties > fan-in) from team workers, so leaf propagation
// — not the anonymous root path — carries the phases.
func TestBarrierTreeRouting(t *testing.T) {
	const n, phases = barrierFanIn*3 + 1, 25
	done := make([]atomic.Int32, phases)
	Region(n, func(w *Worker) {
		if w.Team.Barrier().leaves == nil {
			t.Errorf("no arrival tree for %d parties", n)
		}
		for p := 0; p < phases; p++ {
			done[p].Add(1)
			w.Team.Barrier().WaitWorker(w)
			if got := done[p].Load(); got != n {
				t.Errorf("phase %d: %d arrivals visible after barrier", p, got)
			}
		}
	})
}

// TestBarrierHotTeamLeaseRetireRace interleaves barrier phases with the
// hot-team lifecycle under -race: leases from the pool, clean recycles,
// panic retirement (which must not strand the other workers mid-phase),
// and pool drains from a concurrent goroutine. The barrier's monotonic
// counters must keep pairing phases across all of it — a clean lease
// always leaves the barrier between generations.
func TestBarrierHotTeamLeaseRetireRace(t *testing.T) {
	prev := SetHotTeams(true)
	defer SetHotTeams(prev)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() { // pool churn: drains retire cached teams between leases
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				SetHotTeams(false)
				SetHotTeams(true)
			}
		}
	}()

	for i := 0; i < 25; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil && r != "retire" {
					panic(r)
				}
			}()
			Region(4, func(w *Worker) {
				for p := 0; p < 3; p++ {
					w.Team.Barrier().WaitWorker(w)
				}
				// Panic only after every barrier phase paired, so the
				// remaining workers are never stranded at one; the team is
				// poisoned and retired, never recycled.
				if i%5 == 3 && w.ID == 2 {
					panic("retire")
				}
			})
		}()
	}
	close(stop)
	churn.Wait()
}
