package rt

import (
	"sync/atomic"

	"aomplib/internal/obs"
)

// Observability wiring. Every emit point in the runtime loads the
// published hook table once (obsHooks) and skips everything on nil — the
// disabled path is a single atomic load and a predicted branch, which is
// what keeps the 0 allocs/op region-entry and task-spawn gates intact with
// no tool installed. With a tool installed, emit points pass only scalars
// (ids, sizes, nanoseconds), so the enabled path allocates nothing either.

// obsHooks returns the active tool's hook table, or nil.
func obsHooks() *obs.Hooks { return obs.Active() }

// workerGIDs hands out process-unique worker identities (trace tracks).
var workerGIDs atomic.Int32

// teamTIDs hands out process-unique team identities for trace events.
var teamTIDs atomic.Uint64

// taskTraceIDs hands out task identities for trace flow arrows. Drawn only
// while a tool is installed, so the disabled spawn path stays untouched.
var taskTraceIDs atomic.Uint64

func nextTaskTraceID() uint64 { return taskTraceIDs.Add(1) }

// curGID reports the observability identity of the calling goroutine's
// worker context, or obs.NoWorker outside any region. Only called on
// enabled emit paths.
func curGID() obs.WorkerID {
	if w := Current(); w != nil {
		return w.gid
	}
	return obs.NoWorker
}

// ObsID reports the worker's process-unique observability identity — the
// trace track its events land on.
func (w *Worker) ObsID() obs.WorkerID { return w.gid }

// stampTask assigns t a trace identity and reports its creation to the
// installed tool. h is non-nil (the caller already gated on it).
func stampTask(h *obs.Hooks, t *task, w *Worker, kind obs.TaskKind) {
	if h.TaskCreate != nil {
		t.traceID = nextTaskTraceID()
		h.TaskCreate(w.gid, t.traceID, kind)
	}
}

// emitInlineTask reports a task that never enters a deque — out-of-region
// spawns running on their own goroutines.
func emitInlineTask(h *obs.Hooks) {
	if h != nil && h.TaskInline != nil {
		h.TaskInline(curGID(), nextTaskTraceID())
	}
}

// ObsID reports the team's process-unique observability identity.
func (t *Team) ObsID() uint64 { return t.tid }
