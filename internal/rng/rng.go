// Package rng reimplements the random number generator the JGF benchmarks
// rely on: the 48-bit linear congruential generator of java.util.Random
// (Knuth/POSIX drand48 family), including Gaussian deviates via the
// Marsaglia polar method, exactly as java.util.Random.nextGaussian does.
//
// Reproducing the generator bit-for-bit keeps the benchmark workloads and
// their validation checksums deterministic and comparable across the
// sequential, hand-threaded and aspect-woven versions.
package rng

import "math"

const (
	multiplier = 0x5DEECE66D
	addend     = 0xB
	mask       = (1 << 48) - 1
)

// Random is a java.util.Random-compatible generator. It is not safe for
// concurrent use; parallel benchmark variants give each activity its own
// seeded instance, exactly as the JGF codes do.
type Random struct {
	seed         int64
	haveNextNext bool
	nextNext     float64
}

// New creates a generator with the given seed (java.util.Random(seed)).
func New(seed int64) *Random {
	return &Random{seed: (seed ^ multiplier) & mask}
}

// next returns the high `bits` bits of the next LCG state, as
// java.util.Random.next(int).
func (r *Random) next(bits uint) int32 {
	r.seed = (r.seed*multiplier + addend) & mask
	return int32(r.seed >> (48 - bits))
}

// NextInt returns the next pseudorandom int32.
func (r *Random) NextInt() int32 { return r.next(32) }

// NextIntN returns a uniform int in [0, n), following java.util.Random's
// rejection algorithm.
func (r *Random) NextIntN(n int32) int32 {
	if n <= 0 {
		panic("rng: NextIntN bound must be positive")
	}
	if n&-n == n { // power of two
		return int32((int64(n) * int64(r.next(31))) >> 31)
	}
	for {
		bits := r.next(31)
		val := bits % n
		if bits-val+(n-1) >= 0 {
			return val
		}
	}
}

// NextLong returns the next pseudorandom int64.
func (r *Random) NextLong() int64 {
	return int64(r.next(32))<<32 + int64(r.next(32))
}

// NextDouble returns a uniform double in [0,1), bit-compatible with
// java.util.Random.nextDouble.
func (r *Random) NextDouble() float64 {
	return float64(int64(r.next(26))<<27+int64(r.next(27))) / float64(1<<53)
}

// NextFloat returns a uniform float32 in [0,1).
func (r *Random) NextFloat() float32 {
	return float32(r.next(24)) / float32(1<<24)
}

// NextBoolean returns the next pseudorandom boolean.
func (r *Random) NextBoolean() bool { return r.next(1) != 0 }

// NextGaussian returns a standard normal deviate using the polar method,
// bit-compatible with java.util.Random.nextGaussian.
func (r *Random) NextGaussian() float64 {
	if r.haveNextNext {
		r.haveNextNext = false
		return r.nextNext
	}
	for {
		v1 := 2*r.NextDouble() - 1
		v2 := 2*r.NextDouble() - 1
		s := v1*v1 + v2*v2
		if s >= 1 || s == 0 {
			continue
		}
		mul := math.Sqrt(-2 * math.Log(s) / s)
		r.nextNext = v2 * mul
		r.haveNextNext = true
		return v1 * mul
	}
}

// SetSeed reseeds the generator (java.util.Random.setSeed), clearing the
// cached Gaussian.
func (r *Random) SetSeed(seed int64) {
	r.seed = (seed ^ multiplier) & mask
	r.haveNextNext = false
}

// UpdateSeed advances the seed as the JGF MonteCarlo kernel does between
// runs (seed = seed + 1 per path), provided here so both the sequential
// and parallel variants derive identical per-path generators.
func UpdateSeed(base int64, k int) int64 { return base + int64(k) }
