package aomplib_test

import (
	"fmt"
	"sync/atomic"

	"aomplib"
)

// The minimal parallel loop from the package documentation: a for method
// exposes its iteration space, a parallel-region aspect makes the caller a
// team, and a for-sharing aspect splits the range across the team. After
// Unweave the same calls run with the original sequential semantics.
func Example_parallelLoop() {
	prog := aomplib.NewProgram("demo")
	cls := prog.Class("Demo")

	var sum atomic.Int64
	loop := cls.ForProc("loop", func(lo, hi, step int) {
		var local int64
		for i := lo; i < hi; i += step {
			local += int64(i)
		}
		sum.Add(local)
	})
	run := cls.Proc("run", func() { loop(0, 1000, 1) })

	prog.Use(aomplib.ParallelRegion("call(* Demo.run(..))").Threads(4))
	prog.Use(aomplib.ForShare("call(* Demo.loop(..))"))
	prog.MustWeave()
	run() // parallel: 4 workers share the range
	fmt.Println("parallel sum:", sum.Load())

	prog.Unweave()
	sum.Store(0)
	run() // sequential again: the body runs its full range once
	fmt.Println("sequential sum:", sum.Load())

	// Output:
	// parallel sum: 499500
	// sequential sum: 499500
}

// The same composition in the annotation style of paper Fig. 5: inert
// annotations are attached to methods and translated into aspects by
// AnnotationAspects at weave time.
func Example_annotations() {
	prog := aomplib.NewProgram("demo")
	cls := prog.Class("Demo")

	var hits atomic.Int64
	work := cls.Proc("work", func() { hits.Add(1) })

	prog.MustAnnotate("Demo.work", aomplib.Parallel{Threads: 3})
	prog.Use(aomplib.AnnotationAspects(prog)...)
	prog.MustWeave()

	work() // every worker of the team runs the body
	fmt.Println("workers:", hits.Load())

	// Output:
	// workers: 3
}

// A @FutureTask method runs asynchronously once woven; its getter is the
// synchronisation point (@FutureResult). Unwoven, the future resolves
// synchronously and the program keeps its sequential semantics.
func ExampleFuture() {
	prog := aomplib.NewProgram("demo")
	cls := prog.Class("Demo")

	compute := cls.FutureProc("compute", func() any { return 6 * 7 })

	prog.Use(aomplib.FutureTaskSpawn("call(* Demo.compute(..))"))
	prog.MustWeave()
	f := compute()       // spawned asynchronously
	fmt.Println(f.Get()) // Get blocks until the value is produced

	prog.Unweave()
	fmt.Println(compute().Get()) // resolved synchronously

	// Output:
	// 42
	// 42
}

// Example_dataflow shows @Task + @Depend: two stages per cell, ordered by
// address-keyed dependence clauses instead of barriers, under a @TaskGroup
// that joins the whole pipeline before the region's master proceeds.
func Example_dataflow() {
	prog := aomplib.NewProgram("dataflow")
	cls := prog.Class("Pipe")

	cells := make([]int, 4)
	stageA := cls.KeyedProc("stageA", func(k int) { cells[k] = k + 1 })
	stageB := cls.KeyedProc("stageB", func(k int) { cells[k] *= 10 })
	run := cls.Proc("run", func() {
		for k := range cells {
			stageA(k)
			stageB(k) // inout on &cells[k]: B(k) always runs after A(k)
		}
	})

	cellKey := aomplib.DepFn(func(k int) any { return &cells[k] })
	prog.MustAnnotate("Pipe.run", aomplib.Parallel{Threads: 4}, aomplib.Single{}, aomplib.TaskGroup{})
	prog.MustAnnotate("Pipe.stageA", aomplib.Task{}, aomplib.Depend{Out: []any{cellKey}})
	prog.MustAnnotate("Pipe.stageB", aomplib.Task{}, aomplib.Depend{InOut: []any{cellKey}})
	prog.Use(aomplib.AnnotationAspects(prog)...)
	prog.MustWeave()
	run()
	total := 0
	for _, v := range cells {
		total += v
	}
	fmt.Println(total)

	// Output:
	// 100
}
