// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), plus the overhead ablations backing §IV's "very low run-time
// overhead" claim and the design decisions listed in DESIGN.md §6.
//
//	go test -bench=Figure13 -benchmem        # Figure 13 (JGF vs Aomp)
//	go test -bench=Figure15                  # Figure 15 (MolDyn strategies)
//	go test -bench=Table2                    # Table 2 (weave introspection)
//	go test -bench=Overhead                  # §IV weaving/runtime overheads
//	go test -bench=Ablation                  # schedule/barrier ablations
//
// Benchmark sizes are scaled for CI (seconds, not minutes); cmd/jgfbench
// and cmd/moldynstudy run the full paper sizes.
package aomplib_test

import (
	"runtime"
	"testing"

	"aomplib"
	"aomplib/internal/evolib"
	"aomplib/internal/graph"
	"aomplib/internal/jgf/crypt"
	"aomplib/internal/jgf/harness"
	"aomplib/internal/jgf/lufact"
	"aomplib/internal/jgf/moldyn"
	"aomplib/internal/jgf/montecarlo"
	"aomplib/internal/jgf/raytracer"
	"aomplib/internal/jgf/series"
	"aomplib/internal/jgf/sor"
	"aomplib/internal/jgf/sparse"
	"aomplib/internal/rt"
	"aomplib/internal/sched"
	"aomplib/internal/weaver"
)

func threads() int { return runtime.GOMAXPROCS(0) }

// benchInstance measures inst.Kernel with per-iteration Setup excluded.
func benchInstance(b *testing.B, inst harness.Instance) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inst.Setup()
		b.StartTimer()
		inst.Kernel()
	}
	b.StopTimer()
	if err := inst.Validate(); err != nil {
		b.Fatalf("validation: %v", err)
	}
}

// -------------------------------------------------- Figure 13 (E1) -----

// Bench sizes: large enough that kernels dominate, small enough for CI.
var (
	f13Series = series.Params{N: 1500}
	f13Crypt  = crypt.Params{N: 1_500_000}
	f13LUFact = lufact.Params{N: 350}
	f13SOR    = sor.Params{M: 500, N: 500, Iters: 60}
	f13Sparse = sparse.Params{N: 25_000, NZ: 125_000, Iters: 100}
	f13MolDyn = moldyn.Params{MM: 7, Moves: 8}
	f13MC     = montecarlo.Params{Runs: 3_000, Steps: 500}
	f13RT     = raytracer.Params{Width: 100, Height: 100}
)

func BenchmarkFigure13_Crypt_Seq(b *testing.B)  { benchInstance(b, crypt.NewSeq(f13Crypt)) }
func BenchmarkFigure13_Crypt_MT(b *testing.B)   { benchInstance(b, crypt.NewMT(f13Crypt, threads())) }
func BenchmarkFigure13_Crypt_Aomp(b *testing.B) { benchInstance(b, crypt.NewAomp(f13Crypt, threads())) }

func BenchmarkFigure13_LUFact_Seq(b *testing.B) { benchInstance(b, lufact.NewSeq(f13LUFact)) }
func BenchmarkFigure13_LUFact_MT(b *testing.B)  { benchInstance(b, lufact.NewMT(f13LUFact, threads())) }
func BenchmarkFigure13_LUFact_Aomp(b *testing.B) {
	benchInstance(b, lufact.NewAomp(f13LUFact, threads()))
}

func BenchmarkFigure13_Series_Seq(b *testing.B) { benchInstance(b, series.NewSeq(f13Series)) }
func BenchmarkFigure13_Series_MT(b *testing.B)  { benchInstance(b, series.NewMT(f13Series, threads())) }
func BenchmarkFigure13_Series_Aomp(b *testing.B) {
	benchInstance(b, series.NewAomp(f13Series, threads()))
}

// The Par rows run the generic-algorithms (package parallel) version of
// the kernel against the woven Aomp one: same base program, dispatch via
// parallel.ForRange instead of @For advice.
func BenchmarkFigure13_Series_Par(b *testing.B) {
	benchInstance(b, series.NewParallel(f13Series, threads()))
}

func BenchmarkFigure13_SOR_Seq(b *testing.B)  { benchInstance(b, sor.NewSeq(f13SOR)) }
func BenchmarkFigure13_SOR_MT(b *testing.B)   { benchInstance(b, sor.NewMT(f13SOR, threads())) }
func BenchmarkFigure13_SOR_Aomp(b *testing.B) { benchInstance(b, sor.NewAomp(f13SOR, threads())) }
func BenchmarkFigure13_SOR_Par(b *testing.B)  { benchInstance(b, sor.NewParallel(f13SOR, threads())) }

func BenchmarkFigure13_Sparse_Seq(b *testing.B) { benchInstance(b, sparse.NewSeq(f13Sparse)) }
func BenchmarkFigure13_Sparse_MT(b *testing.B)  { benchInstance(b, sparse.NewMT(f13Sparse, threads())) }
func BenchmarkFigure13_Sparse_Aomp(b *testing.B) {
	benchInstance(b, sparse.NewAomp(f13Sparse, threads()))
}

func BenchmarkFigure13_MolDyn_Seq(b *testing.B) { benchInstance(b, moldyn.NewSeq(f13MolDyn)) }
func BenchmarkFigure13_MolDyn_MT(b *testing.B)  { benchInstance(b, moldyn.NewMT(f13MolDyn, threads())) }
func BenchmarkFigure13_MolDyn_Aomp(b *testing.B) {
	benchInstance(b, moldyn.NewAomp(f13MolDyn, threads(), moldyn.ThreadLocalStrategy))
}

func BenchmarkFigure13_MonteCarlo_Seq(b *testing.B) { benchInstance(b, montecarlo.NewSeq(f13MC)) }
func BenchmarkFigure13_MonteCarlo_MT(b *testing.B) {
	benchInstance(b, montecarlo.NewMT(f13MC, threads()))
}
func BenchmarkFigure13_MonteCarlo_Aomp(b *testing.B) {
	benchInstance(b, montecarlo.NewAomp(f13MC, threads()))
}

func BenchmarkFigure13_RayTracer_Seq(b *testing.B) { benchInstance(b, raytracer.NewSeq(f13RT)) }
func BenchmarkFigure13_RayTracer_MT(b *testing.B) {
	benchInstance(b, raytracer.NewMT(f13RT, threads()))
}
func BenchmarkFigure13_RayTracer_Aomp(b *testing.B) {
	benchInstance(b, raytracer.NewAomp(f13RT, threads()))
}

// -------------------------------------------------- Figure 15 (E3) -----

func benchMolDynStrategy(b *testing.B, mm int, s moldyn.Strategy) {
	benchInstance(b, moldyn.NewAomp(moldyn.Params{MM: mm, Moves: 5}, threads(), s))
}

func BenchmarkFigure15_MolDyn_Critical_864(b *testing.B) {
	benchMolDynStrategy(b, 6, moldyn.CriticalStrategy)
}
func BenchmarkFigure15_MolDyn_Locks_864(b *testing.B) {
	benchMolDynStrategy(b, 6, moldyn.LockPerParticleStrategy)
}
func BenchmarkFigure15_MolDyn_ThreadLocal_864(b *testing.B) {
	benchMolDynStrategy(b, 6, moldyn.ThreadLocalStrategy)
}
func BenchmarkFigure15_MolDyn_JGF_864(b *testing.B) {
	benchInstance(b, moldyn.NewMT(moldyn.Params{MM: 6, Moves: 5}, threads()))
}
func BenchmarkFigure15_MolDyn_Critical_2048(b *testing.B) {
	benchMolDynStrategy(b, 8, moldyn.CriticalStrategy)
}
func BenchmarkFigure15_MolDyn_Locks_2048(b *testing.B) {
	benchMolDynStrategy(b, 8, moldyn.LockPerParticleStrategy)
}
func BenchmarkFigure15_MolDyn_ThreadLocal_2048(b *testing.B) {
	benchMolDynStrategy(b, 8, moldyn.ThreadLocalStrategy)
}
func BenchmarkFigure15_MolDyn_JGF_2048(b *testing.B) {
	benchInstance(b, moldyn.NewMT(moldyn.Params{MM: 8, Moves: 5}, threads()))
}

// ---------------------------------------------------- Table 2 (E2) -----

// BenchmarkTable2_WeaveIntrospection measures building + weaving + report
// generation for a full benchmark program (the Table 2 pipeline), showing
// weaving itself is cheap enough to do at load time.
func BenchmarkTable2_WeaveIntrospection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst := lufact.NewAomp(lufact.SizeTest, 2)
		inst.Setup()
		rep := inst.(interface{ WeaveReport() []weaver.WovenMethod }).WeaveReport()
		if len(rep) == 0 {
			b.Fatal("empty report")
		}
	}
}

// ------------------------------------------------- §IV overheads (E4) --

// BenchmarkOverhead_DirectCall is the baseline: a plain closure call.
func BenchmarkOverhead_DirectCall(b *testing.B) {
	var sink int
	f := func() { sink++ }
	for i := 0; i < b.N; i++ {
		f()
	}
	_ = sink
}

// BenchmarkOverhead_UnwovenMethod measures a registered but unadvised
// method — the cost of keeping sequential semantics available.
func BenchmarkOverhead_UnwovenMethod(b *testing.B) {
	p := aomplib.NewProgram("bench")
	var sink int
	f := p.Class("A").Proc("m", func() { sink++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	_ = sink
}

// BenchmarkOverhead_WovenNoWorker measures a woven method whose advice
// does not need the worker context (e.g. critical sections).
func BenchmarkOverhead_WovenNoWorker(b *testing.B) {
	p := aomplib.NewProgram("bench")
	var sink int
	f := p.Class("A").Proc("m", func() { sink++ })
	p.Use(aomplib.CriticalSection("call(* A.m(..))"))
	p.MustWeave()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	_ = sink
}

// BenchmarkOverhead_WorkerLookupInRegion measures the goroutine-identity
// resolution that worker-dependent advice pays per call inside a region —
// the substitution cost for Java's JIT-inlined ThreadLocal (see
// EXPERIMENTS.md, LUFact deviation).
func BenchmarkOverhead_WorkerLookupInRegion(b *testing.B) {
	rt.Region(1, func(w *rt.Worker) {
		for i := 0; i < b.N; i++ {
			if rt.Current() != w {
				b.Fatal("wrong worker")
			}
		}
	})
}

// BenchmarkOverhead_RegionEntry measures region entry+join (paper Fig. 9)
// on the warm path: hot teams (the default) lease a pooled team, so the
// steady state must stay at 0 allocs/op — a CI gate.
func BenchmarkOverhead_RegionEntry(b *testing.B) {
	p := aomplib.NewProgram("bench")
	f := p.Class("A").Proc("m", func() {})
	p.Use(aomplib.ParallelRegion("call(* A.m(..))").Threads(threads()))
	p.MustWeave()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
}

// BenchmarkOverhead_RegionEntryUngated is the region-entry ablation
// baseline without per-advice gates (pre-gate chains): the delta against
// BenchmarkOverhead_RegionEntry is the cost of the one atomic load + branch
// each gated stage pays.
func BenchmarkOverhead_RegionEntryUngated(b *testing.B) {
	p := aomplib.NewProgram("bench", aomplib.Ungated())
	f := p.Class("A").Proc("m", func() {})
	p.Use(aomplib.ParallelRegion("call(* A.m(..))").Threads(threads()))
	p.MustWeave()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
}

// BenchmarkOverhead_RegionEntryDisabled measures the same entry with the
// region advice gated off: the chain collapses to the direct body, so the
// cost must match an unadvised method — reconfiguration without unweaving.
func BenchmarkOverhead_RegionEntryDisabled(b *testing.B) {
	p := aomplib.NewProgram("bench")
	f := p.Class("A").Proc("m", func() {})
	p.Use(aomplib.ParallelRegion("call(* A.m(..))").Threads(threads()))
	p.MustWeave()
	if err := p.SetAdviceEnabled("ParallelRegion", false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
}

// BenchmarkOverhead_RegionEntryStatic measures the statically woven entry
// emitted by cmd/weavegen (staticweave_gen_test.go): no chain load, no
// gate checks, frozen advice composition. The ablation expectation —
// static ≤ gated dynamic ≤ ungated+gate — is recorded in DESIGN.md §14.
func BenchmarkOverhead_RegionEntryStatic(b *testing.B) {
	p := newStaticBenchProgram(threads())
	e, err := bindStaticBench(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.M()
	}
}

// TestStaticBenchBind keeps the generated static demo exercised by plain
// go test runs: binding succeeds against a freshly built program, the
// unadvised method resolves to the direct body, and a reconfigured
// program is rejected.
func TestStaticBenchBind(t *testing.T) {
	p := newStaticBenchProgram(2)
	e, err := bindStaticBench(p)
	if err != nil {
		t.Fatal(err)
	}
	e.M()
	e.Plain()
	if err := p.SetAdviceEnabled("ParallelRegion", false); err != nil {
		t.Fatal(err)
	}
	if _, err := bindStaticBench(p); err == nil {
		t.Fatal("bindStaticBench accepted a drifted configuration")
	}
}

// BenchmarkOverhead_RegionEntryCold is the same entry with hot teams off:
// team, workers and goroutines are built and discarded per entry — the
// pre-pool behaviour the warm path is measured against.
func BenchmarkOverhead_RegionEntryCold(b *testing.B) {
	prev := aomplib.SetHotTeams(false)
	defer aomplib.SetHotTeams(prev)
	p := aomplib.NewProgram("bench")
	f := p.Class("A").Proc("m", func() {})
	p.Use(aomplib.ParallelRegion("call(* A.m(..))").Threads(threads()))
	p.MustWeave()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
}

// BenchmarkOverhead_RegionEntryTraced is the warm entry with the runtime
// tracer installed and recording — the CI gate asserting that enabling
// observability adds no allocations to the facade region-entry path (the
// emit points write fixed-size records into preallocated ring buffers).
func BenchmarkOverhead_RegionEntryTraced(b *testing.B) {
	aomplib.StartTrace()
	defer aomplib.EnableTracing(false)
	p := aomplib.NewProgram("bench")
	f := p.Class("A").Proc("m", func() {})
	p.Use(aomplib.ParallelRegion("call(* A.m(..))").Threads(threads()))
	p.MustWeave()
	f() // warm team + register trace rings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1023 == 0 {
			// Reset the rings periodically so the gate measures the record
			// path, not (mostly) the cheaper buffer-full drop path.
			aomplib.StartTrace()
		}
		f()
	}
}

// BenchmarkOverhead_RegionEntryMetrics is the warm entry with the
// always-on metrics registry recording — the CI gate asserting that
// production telemetry adds no allocations to the facade region-entry
// path (the record path is preallocated padded atomics and lossy pairing
// tables).
func BenchmarkOverhead_RegionEntryMetrics(b *testing.B) {
	prev := aomplib.EnableMetrics(true)
	defer aomplib.EnableMetrics(prev)
	p := aomplib.NewProgram("bench")
	f := p.Class("A").Proc("m", func() {})
	p.Use(aomplib.ParallelRegion("call(* A.m(..))").Threads(threads()))
	p.MustWeave()
	f() // warm team + allocate metric shards
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
}

// BenchmarkOverhead_CriticalNamed measures a steady-state woven
// @Critical(id=...) entry. The advice resolves the named lock once at
// weave time and caches it in the binding, so per-entry cost is one
// pointer load plus the lock round trip — the registry (sharded, see
// internal/rt/locks.go) is never touched here, and the path must stay
// allocation-free.
func BenchmarkOverhead_CriticalNamed(b *testing.B) {
	p := aomplib.NewProgram("bench")
	var sink int
	f := p.Class("A").Proc("m", func() { sink++ })
	p.Use(aomplib.CriticalSection("call(* A.m(..))").ID("shared"))
	p.MustWeave()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	_ = sink
}

// BenchmarkOverhead_PointcutMatch measures pointcut evaluation (weave-time
// cost only; never paid at run time).
func BenchmarkOverhead_PointcutMatch(b *testing.B) {
	pc := aomplib.MustParsePointcut("call(void Linpack.interchange(..)) || call(void Linpack.dscal(..))")
	p := aomplib.NewProgram("bench")
	p.Class("Linpack").Proc("dscal", func() {})
	jp := p.Method("Linpack.dscal").JP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Matches(jp)
	}
}

// ------------------------------------------------ ablations (DESIGN §6) --

// imbalancedLoop builds a region+for program over a triangular workload
// (cost of iteration i proportional to n-i), the shape of LUFact's
// elimination and MolDyn's force rows.
func benchScheduleAblation(b *testing.B, kind sched.Kind, chunk int) {
	const n = 2048
	p := aomplib.NewProgram("bench")
	var sink float64
	loop := p.Class("A").ForProc("loop", func(lo, hi, step int) {
		local := 0.0
		for i := lo; i < hi; i += step {
			for j := i; j < n; j++ {
				local += float64(j)
			}
		}
		_ = local
	})
	run := p.Class("A").Proc("run", func() { loop(0, n, 1) })
	p.Use(aomplib.ParallelRegion("call(* A.run(..))").Threads(threads()))
	p.Use(aomplib.ForShare("call(* A.loop(..))").Schedule(kind).Chunk(chunk))
	p.MustWeave()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	_ = sink
}

func BenchmarkAblation_Schedule_StaticBlock(b *testing.B) {
	benchScheduleAblation(b, sched.StaticBlock, 0)
}
func BenchmarkAblation_Schedule_StaticCyclic(b *testing.B) {
	benchScheduleAblation(b, sched.StaticCyclic, 0)
}
func BenchmarkAblation_Schedule_Dynamic16(b *testing.B) {
	benchScheduleAblation(b, sched.Dynamic, 16)
}
func BenchmarkAblation_Schedule_Guided(b *testing.B) {
	benchScheduleAblation(b, sched.Guided, 1)
}
func BenchmarkAblation_Schedule_Steal(b *testing.B) {
	benchScheduleAblation(b, sched.Steal, 16)
}

// BenchmarkAblation_Barrier measures the team barrier round trip.
func BenchmarkAblation_Barrier(b *testing.B) {
	rt.Region(threads(), func(w *rt.Worker) {
		for i := 0; i < b.N; i++ {
			w.Team.Barrier().Wait()
		}
	})
}

// BenchmarkAblation_ConstructInstance measures the per-encounter
// bookkeeping of work-sharing constructs.
func BenchmarkAblation_ConstructInstance(b *testing.B) {
	rt.Region(2, func(w *rt.Worker) {
		sp := sched.Space{Lo: 0, Hi: 100, Step: 1}
		for i := 0; i < b.N; i++ {
			fc := rt.BeginFor(w, "bench", sp, sched.StaticBlock, 1)
			fc.EndFor()
		}
	})
}

// ----------------------------------------- §VII extensions (E7/E8) -----

// BenchmarkExtension_PageRank_* compares schedules on the skewed
// power-law graph — the irregular-algorithm study of the paper's current
// work, where dynamic/guided should beat static block.
func benchPageRank(b *testing.B, kind sched.Kind, chunk int) {
	g := graph.NewPowerLaw(20_000, 10, 2013)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pr := graph.NewPageRank(g, 0.85, 10)
		run, _ := graph.BuildAomp(pr, threads(), kind, chunk)
		b.StartTimer()
		run()
	}
}

func BenchmarkExtension_PageRank_StaticBlock(b *testing.B) {
	benchPageRank(b, sched.StaticBlock, 0)
}
func BenchmarkExtension_PageRank_Dynamic(b *testing.B) {
	benchPageRank(b, sched.Dynamic, 64)
}
func BenchmarkExtension_PageRank_Guided(b *testing.B) {
	benchPageRank(b, sched.Guided, 16)
}

// BenchmarkExtension_Evolution measures one aspect-woven GA run (JECoLi
// case study).
func BenchmarkExtension_Evolution(b *testing.B) {
	cfg := evolib.Config{
		PopSize: 120, GenomeLen: 16, Generations: 10,
		TournamentK: 3, CrossoverRate: 0.9,
		MutationRate: 0.08, MutationSigma: 0.25, Elite: 4,
		Seed: 7, LowerBound: -5.12, UpperBound: 5.12,
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ga, err := evolib.New(cfg, evolib.Rastrigin)
		if err != nil {
			b.Fatal(err)
		}
		run, _ := evolib.BuildAomp(ga, threads())
		b.StartTimer()
		run()
	}
}
